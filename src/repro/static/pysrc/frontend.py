"""AST frontend: lower Python source into the :mod:`~repro.static.pysrc.ir`.

One lowering covers two surface languages that this repository cares
about, producing the same IR for both:

* **real ``threading`` programs** — module globals, ``self`` attribute
  state, ``threading.Thread(target=...)`` / ``Thread`` subclasses /
  ``concurrent.futures`` submits as spawns, ``with lock:`` and
  ``acquire``/``release`` as lock regions;
* **the generator-model DSL** (:mod:`repro.runtime.program`) —
  ``ops.rd``/``ops.wr`` as accesses, ``ops.acq``/``ops.rel`` as lock
  regions, ``ops.fork``/``ops.join`` and ``Program(main=...)`` as
  thread structure.  Scanning the repository's own example programs
  therefore needs no special casing.

The lowering is *flow-aware within a function* (symbolic locksets are
propagated through branches by intersection, so a lock is only
considered held at a site when it is held on every path) and
*allocation-aware* (a local bound to a fresh container or instance that
never escapes the function is provably thread-confined; accesses
through it are marked ``local_root`` and become prunable).  Everything
it cannot resolve degrades in the sound direction: unknown lock
expressions contribute nothing to locksets, unknown spawn targets are
counted as *unknown entries* (which disables sharing-based pruning for
the whole module), and writes through unresolved object roots are
counted as *opaque accesses* rather than silently dropped.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Union

from repro.static.pysrc.ir import (
    AccessSite,
    CallEdge,
    FunctionIR,
    ModuleIR,
    PathPattern,
    SpawnSite,
)

#: threading factory callables whose result is a lock for our purposes
#: (anything with acquire/release mutual-exclusion semantics).
_LOCK_FACTORIES = frozenset({
    "threading.Lock", "threading.RLock", "threading.Condition",
    "threading.Semaphore", "threading.BoundedSemaphore",
})

_THREAD_CLASS = "threading.Thread"
_EXECUTOR_CLASSES = frozenset({
    "concurrent.futures.ThreadPoolExecutor",
    "concurrent.futures.thread.ThreadPoolExecutor",
})

_OPS_METHODS = frozenset({"rd", "wr", "vrd", "vwr", "acq", "rel",
                          "fork", "join"})


@dataclass
class _Ref:
    """Symbolic value of an expression during lowering."""

    kind: str = "opaque"
    #: Resolved symbolic root path ("counter", "Registry", ...).
    path: Optional[str] = None
    #: Class qualname when the value is (an instance of) a module class.
    cls: Optional[str] = None
    #: Lock symbol when the value is a known lock.
    lock: Optional[str] = None
    #: Function qualname when the value is a module function.
    func: Optional[str] = None
    #: Dotted import origin when the value is a module / module member.
    module: Optional[str] = None
    #: Name of the fresh local this value is rooted at, if any.
    local: Optional[str] = None
    #: For thread handles / executors / handle collections.
    spawns: List[SpawnSite] = field(default_factory=list)
    #: For "op" kinds: the pending operation name (start, join, submit,
    #: or an ops.* DSL method).
    op: Optional[str] = None
    #: Fresh locals bound to builtin containers keep their freshness
    #: across method calls (list.append does not publish its receiver);
    #: fresh class instances do not.
    container: bool = False


def _opaque() -> _Ref:
    return _Ref()


class _ClassInfo:
    def __init__(self, qualname: str) -> None:
        self.qualname = qualname
        self.methods: Set[str] = set()
        self.is_thread = False


class ModuleFrontend:
    """Lowers one parsed module; one instance per
    :func:`lower_module` call."""

    def __init__(self, tree: ast.Module, path: str, name: str) -> None:
        self.tree = tree
        self.path = path
        self.name = name
        self.imports: Dict[str, str] = {}
        self.classes: Dict[str, _ClassInfo] = {}
        self.func_nodes: Dict[str, ast.AST] = {}
        self.data_globals: Set[str] = set()
        #: Globals whose binding is ever re-assigned (beyond the single
        #: module-level defining assignment); only these produce sites
        #: for bare-name loads/stores — a never-reassigned binding is
        #: effectively final, and only the *object's* state (tracked via
        #: attribute paths) can race.
        self.reassigned: Set[str] = set()
        self.lock_symbols: Set[str] = set()
        self.instance_of: Dict[str, str] = {}
        self.unknown_entries = 0
        self.opaque_accesses = 0
        self.acquired: Set[str] = set()
        self.functions: Dict[str, FunctionIR] = {}

    # ------------------------------------------------------------------
    # Pre-passes
    # ------------------------------------------------------------------
    def _collect_imports(self) -> None:
        for node in ast.walk(self.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    local = alias.asname or alias.name.split(".")[0]
                    self.imports[local] = (alias.name if alias.asname
                                           else alias.name.split(".")[0])
            elif isinstance(node, ast.ImportFrom) and node.module:
                for alias in node.names:
                    local = alias.asname or alias.name
                    self.imports[local] = f"{node.module}.{alias.name}"

    def _collect_classes(self) -> None:
        for node in self.tree.body:
            if not isinstance(node, ast.ClassDef):
                continue
            info = _ClassInfo(node.name)
            for base in node.bases:
                origin = self._dotted_origin(base)
                if origin == _THREAD_CLASS:
                    info.is_thread = True
                elif origin in self.classes and self.classes[origin].is_thread:
                    info.is_thread = True
            for item in node.body:
                if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    info.methods.add(item.name)
                    self.func_nodes[f"{node.name}.{item.name}"] = item
            self.classes[node.name] = info

    def _dotted_origin(self, node: ast.AST) -> Optional[str]:
        """Resolve an expression to its dotted import origin, if it is
        a chain of names rooted at an import alias."""
        parts: List[str] = []
        cur = node
        while isinstance(cur, ast.Attribute):
            parts.append(cur.attr)
            cur = cur.value
        if not isinstance(cur, ast.Name):
            return None
        root = self.imports.get(cur.id)
        if root is None:
            return None
        return ".".join([root] + list(reversed(parts)))

    def _collect_functions(self) -> None:
        def walk(nodes: Sequence[ast.stmt], prefix: str) -> None:
            for node in nodes:
                if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    qual = f"{prefix}{node.name}"
                    self.func_nodes.setdefault(qual, node)
                    walk(node.body, f"{qual}.")
        walk(self.tree.body, "")

    def _collect_globals(self) -> None:
        assigned: Dict[str, int] = {}

        def note(name: str) -> None:
            assigned[name] = assigned.get(name, 0) + 1

        for stmt in self.tree.body:
            targets: List[ast.expr] = []
            if isinstance(stmt, ast.Assign):
                targets = list(stmt.targets)
            elif isinstance(stmt, (ast.AugAssign, ast.AnnAssign, ast.For)):
                targets = [stmt.target]
            for target in targets:
                for node in ast.walk(target):
                    if isinstance(node, ast.Name):
                        note(node.id)
            # Lock symbols and instance types from the defining value.
            if isinstance(stmt, ast.Assign) and len(stmt.targets) == 1 \
                    and isinstance(stmt.targets[0], ast.Name) \
                    and isinstance(stmt.value, ast.Call):
                name = stmt.targets[0].id
                origin = self._dotted_origin(stmt.value.func)
                if origin in _LOCK_FACTORIES:
                    self.lock_symbols.add(name)
                elif (isinstance(stmt.value.func, ast.Name)
                      and stmt.value.func.id in self.classes):
                    self.instance_of[name] = stmt.value.func.id
        for node in ast.walk(self.tree):
            if isinstance(node, ast.Global):
                for name in node.names:
                    note(name)
                    note(name)  # a global declaration implies mutation
        skip = (set(self.func_nodes) | set(self.classes)
                | set(self.imports) | self.lock_symbols)
        for name, count in assigned.items():
            if name in skip or name.startswith("__"):
                continue
            self.data_globals.add(name)
            if count > 1:
                self.reassigned.add(name)
        # self.attr = threading.Lock() in any method -> class lock symbol.
        for cls_name, info in self.classes.items():
            for method in info.methods:
                node = self.func_nodes.get(f"{cls_name}.{method}")
                if node is None:
                    continue
                for sub in ast.walk(node):
                    if (isinstance(sub, ast.Assign) and len(sub.targets) == 1
                            and isinstance(sub.targets[0], ast.Attribute)
                            and isinstance(sub.targets[0].value, ast.Name)
                            and sub.targets[0].value.id == "self"
                            and isinstance(sub.value, ast.Call)
                            and self._dotted_origin(sub.value.func)
                            in _LOCK_FACTORIES):
                        self.lock_symbols.add(
                            f"{cls_name}.{sub.targets[0].attr}")

    # ------------------------------------------------------------------
    def lower(self) -> ModuleIR:
        self._collect_imports()
        self._collect_classes()
        self._collect_functions()
        self._collect_globals()

        module_body = [stmt for stmt in self.tree.body
                       if not isinstance(stmt, (ast.FunctionDef,
                                                ast.AsyncFunctionDef,
                                                ast.ClassDef))]
        self.functions["<module>"] = _FunctionLowering(
            self, "<module>", module_body, params=[], line=1).run()
        for qual, node in self.func_nodes.items():
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                self.functions[qual] = self._lower_function(qual, node)
        self._refine_params()

        return ModuleIR(path=self.path, name=self.name,
                        functions=self.functions,
                        lock_symbols=frozenset(self.lock_symbols),
                        acquired_locks=frozenset(self.acquired),
                        opaque_accesses=self.opaque_accesses,
                        unknown_entries=self.unknown_entries)

    def _lower_function(self, qual: str, node: ast.AST,
                        bindings: Optional[Dict[str, _Ref]] = None,
                        ) -> FunctionIR:
        assert isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
        params = [a.arg for a in node.args.args]
        env: Dict[str, _Ref] = dict(bindings or {})
        if "." in qual:
            cls = qual.rsplit(".", 1)[0]
            if cls in self.classes and params and params[0] == "self":
                env["self"] = _Ref(kind="path", path=cls, cls=cls)
        return _FunctionLowering(self, qual, node.body, params=params,
                                 line=node.lineno, env=env).run()

    def _refine_params(self) -> None:
        """Re-lower functions whose parameters are consistently bound to
        resolvable shared roots at every spawn site (``Thread(args=...)``
        / ``submit(f, ...)``), so accesses through those parameters
        resolve instead of being opaque."""
        spawns_by_entry: Dict[str, List[SpawnSite]] = {}
        for fn in self.functions.values():
            for sp in fn.spawns:
                spawns_by_entry.setdefault(sp.entry, []).append(sp)
        for entry, spawns in spawns_by_entry.items():
            node = self.func_nodes.get(entry)
            if node is None or not any(sp.arg_roots for sp in spawns):
                continue
            fn_ir = self.functions.get(entry)
            if fn_ir is None:
                continue
            params = fn_ir.params
            offset = 1 if params and params[0] == "self" else 0
            bindings: Dict[str, _Ref] = {}
            for i, param in enumerate(params[offset:]):
                roots = {tuple(sp.arg_roots)[i] if i < len(sp.arg_roots)
                         else None for sp in spawns}
                if len(roots) == 1:
                    root = next(iter(roots))
                    if root is not None:
                        bindings[param] = _Ref(
                            kind="path", path=root,
                            cls=self.instance_of.get(root))
            if bindings:
                self.functions[entry] = self._lower_function(
                    entry, node, bindings=bindings)


class _FunctionLowering:
    """Lower one function body (or the module's top-level statements)."""

    def __init__(self, mod: ModuleFrontend, qualname: str,
                 body: Sequence[ast.stmt], params: List[str], line: int,
                 env: Optional[Dict[str, _Ref]] = None) -> None:
        self.mod = mod
        self.fn = FunctionIR(qualname=qualname, file=mod.path, line=line,
                             params=params)
        self.body = body
        self.env: Dict[str, _Ref] = dict(env or {})
        self.held: List[str] = []
        self.cur_stmt = 0
        self.loop_depth = 0
        self.cond_depth = 0
        self.global_decls: Set[str] = set()
        self.escaped: Set[str] = set()
        #: Local names assigned somewhere in the body (Python scoping:
        #: any assignment makes the name local unless declared global).
        self.local_names: Set[str] = set(params)
        self._scan_locals()

    def _scan_locals(self) -> None:
        def scan(node: ast.AST) -> None:
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                                 ast.ClassDef)):
                # A nested scope binds its name here but its body's
                # assignments are its own.
                self.local_names.add(node.name)
                return
            if isinstance(node, ast.Lambda):
                return
            if isinstance(node, ast.Global):
                self.global_decls.update(node.names)
            elif isinstance(node, ast.Name) and isinstance(
                    node.ctx, (ast.Store, ast.Del)):
                self.local_names.add(node.id)
            for child in ast.iter_child_nodes(node):
                scan(child)

        for stmt in self.body:
            scan(stmt)
        self.local_names -= self.global_decls

    # ------------------------------------------------------------------
    def run(self) -> FunctionIR:
        for i, stmt in enumerate(self.body):
            self.cur_stmt = i
            self._stmt(stmt)
        self._finalize_locals()
        return self.fn

    def _finalize_locals(self) -> None:
        """Drop tentative thread-local sites whose root escaped: the
        object may be shared, but we no longer know through which path —
        that is an opaque access, counted so coverage gaps are visible."""
        kept: List[AccessSite] = []
        for site in self.fn.sites:
            if site.local_root is not None and site.local_root in self.escaped:
                self.mod.opaque_accesses += 1
                continue
            kept.append(site)
        self.fn.sites = kept

    # ------------------------------------------------------------------
    # Statements
    # ------------------------------------------------------------------
    def _stmt(self, node: ast.stmt) -> None:
        if isinstance(node, ast.Expr):
            self._expr(node.value)
        elif isinstance(node, ast.Assign):
            value = self._expr(node.value)
            for target in node.targets:
                self._assign(target, value, node)
        elif isinstance(node, ast.AugAssign):
            self._expr(node.value)
            self._access_target(node.target, write=True, aug=True)
        elif isinstance(node, ast.AnnAssign):
            value = self._expr(node.value) if node.value else _opaque()
            if node.value is not None:
                self._assign(node.target, value, node)
        elif isinstance(node, ast.If):
            self._expr(node.test)
            before = list(self.held)
            self.cond_depth += 1
            self._stmts(node.body)
            after_body = list(self.held)
            self.held = list(before)
            self._stmts(node.orelse)
            self.cond_depth -= 1
            self.held = _merge(before, _merge(after_body, self.held))
        elif isinstance(node, (ast.For, ast.AsyncFor)):
            iter_ref = self._expr(node.iter)
            if isinstance(node.target, ast.Name):
                if iter_ref.spawns:
                    self.env[node.target.id] = _Ref(kind="spawns",
                                                    spawns=iter_ref.spawns)
                else:
                    self.env[node.target.id] = _opaque()
            before = list(self.held)
            self.loop_depth += 1
            self._stmts(node.body)
            self.loop_depth -= 1
            self.cond_depth += 1
            self._stmts(node.orelse)
            self.cond_depth -= 1
            self.held = _merge(before, self.held)
        elif isinstance(node, (ast.While,)):
            self._expr(node.test)
            before = list(self.held)
            self.loop_depth += 1
            self.cond_depth += 1
            self._stmts(node.body)
            self._stmts(node.orelse)
            self.cond_depth -= 1
            self.loop_depth -= 1
            self.held = _merge(before, self.held)
        elif isinstance(node, (ast.With, ast.AsyncWith)):
            self._with(node)
        elif isinstance(node, ast.Try):
            before = list(self.held)
            self._stmts(node.body)
            after_body = list(self.held)
            self.cond_depth += 1
            for handler in node.handlers:
                self.held = list(before)
                self._stmts(handler.body)
            self.cond_depth -= 1
            self.held = _merge(before, after_body)
            self._stmts(node.orelse)
            self._stmts(node.finalbody)
        elif isinstance(node, ast.Return):
            if node.value is not None:
                self._escape(self._expr(node.value))
        elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            qual = f"{self.fn.qualname}.{node.name}"
            if qual in self.mod.func_nodes:
                self.env[node.name] = _Ref(kind="func", func=qual)
        elif isinstance(node, ast.ClassDef):
            pass
        elif isinstance(node, ast.Global):
            pass
        elif isinstance(node, (ast.Delete, ast.Assert, ast.Raise)):
            for child in ast.iter_child_nodes(node):
                if isinstance(child, ast.expr):
                    self._expr(child)
        else:
            for child in ast.iter_child_nodes(node):
                if isinstance(child, ast.expr):
                    self._expr(child)
                elif isinstance(child, ast.stmt):
                    self._stmt(child)

    def _stmts(self, body: Sequence[ast.stmt]) -> None:
        saved = self.cur_stmt
        for stmt in body:
            self._stmt(stmt)
        self.cur_stmt = saved

    def _with(self, node: Union[ast.With, ast.AsyncWith]) -> None:
        pushed: List[str] = []
        executors: List[_Ref] = []
        for item in node.items:
            ref = self._expr(item.context_expr)
            if ref.kind == "lock" and ref.lock is not None:
                self.held.append(ref.lock)
                self.mod.acquired.add(ref.lock)
                pushed.append(ref.lock)
            elif ref.kind == "executor":
                executors.append(ref)
            if item.optional_vars is not None and isinstance(
                    item.optional_vars, ast.Name):
                self.env[item.optional_vars.id] = ref
        self._stmts(node.body)
        for lock in reversed(pushed):
            if lock in self.held:
                self.held.remove(lock)
        # Exiting `with ThreadPoolExecutor() as pool:` shuts the pool
        # down with wait=True: every submitted task has completed.
        for ref in executors:
            self._join_spawns(ref.spawns)

    # ------------------------------------------------------------------
    # Assignment / access emission
    # ------------------------------------------------------------------
    def _assign(self, target: ast.expr, value: _Ref, stmt: ast.stmt) -> None:
        if isinstance(target, ast.Name):
            name = target.id
            if name in self.local_names:
                self.env[name] = value
                return
            # Global binding write (module level, or via `global`).
            if name in self.mod.lock_symbols:
                return  # lock creation, not data
            if name in self.mod.data_globals:
                self._emit(PathPattern(name), write=True, node=target,
                           init=self._is_init())
            self._escape(value)
        elif isinstance(target, ast.Attribute):
            base = self._expr(target.value)
            self._attr_access(base, target.attr, target, write=True)
            self._escape(value)
        elif isinstance(target, ast.Subscript):
            base = self._expr(target.value)
            self._expr(target.slice)
            self._subscript_access(base, target, write=True)
            if base.kind != "fresh":
                self._escape(value)
        elif isinstance(target, (ast.Tuple, ast.List)):
            for elt in target.elts:
                self._assign(elt, _opaque(), stmt)

    def _is_init(self) -> bool:
        """Module-level unconditional assignments run at import time,
        strictly before any thread this module spawns (spawns happen in
        functions invoked from later top-level statements)."""
        return self.fn.qualname == "<module>" and self.cond_depth == 0 \
            and self.loop_depth == 0

    def _access_target(self, target: ast.expr, write: bool,
                       aug: bool = False) -> None:
        """AugAssign target: read + write of the same location."""
        if isinstance(target, ast.Name):
            name = target.id
            if name in self.local_names:
                return
            if name in self.mod.data_globals and name not in \
                    self.mod.lock_symbols:
                if aug:
                    self._emit(PathPattern(name), write=False, node=target)
                self._emit(PathPattern(name), write=True, node=target,
                           init=False)
        elif isinstance(target, ast.Attribute):
            base = self._expr(target.value)
            if aug:
                self._attr_access(base, target.attr, target, write=False)
            self._attr_access(base, target.attr, target, write=True)
        elif isinstance(target, ast.Subscript):
            base = self._expr(target.value)
            self._expr(target.slice)
            if aug:
                self._subscript_access(base, target, write=False)
            self._subscript_access(base, target, write=True)

    def _attr_access(self, base: _Ref, attr: str, node: ast.expr,
                     write: bool) -> _Ref:
        if base.kind in ("path", "class"):
            root = base.path if base.kind == "path" else base.cls
            if root is None:
                return _opaque()
            path = f"{root}.{attr}"
            if path in self.mod.lock_symbols:
                return _Ref(kind="lock", lock=path)
            cls = base.cls or (root if root in self.mod.classes else None)
            if cls is not None and f"{cls}.{attr}" in self.mod.func_nodes:
                return _Ref(kind="func", func=f"{cls}.{attr}")
            init = (write and self.fn.qualname.endswith(".__init__")
                    and base.path == self.fn.qualname.rsplit(".", 1)[0])
            self._emit(PathPattern(path), write=write, node=node, init=init)
            return _Ref(kind="path", path=path)
        if base.kind == "fresh":
            if base.local is not None:
                self._emit(PathPattern(
                    f"{self.fn.qualname}.<{base.local}>.{attr}"),
                    write=write, node=node, local_root=base.local)
            return _Ref(kind="fresh", local=base.local,
                        container=base.container)
        if base.kind == "module" and base.module is not None:
            return _Ref(kind="module", module=f"{base.module}.{attr}")
        if base.kind in ("spawns", "executor"):
            if attr in ("start", "join", "submit", "map", "shutdown",
                        "result"):
                return _Ref(kind="op", op=attr, spawns=base.spawns)
            return _opaque()
        if base.kind == "lock" and base.lock is not None:
            if attr in ("acquire", "release", "__enter__", "__exit__"):
                return _Ref(kind="op", op=attr, lock=base.lock)
            return _opaque()
        if write:
            self.mod.opaque_accesses += 1
        return _opaque()

    def _subscript_access(self, base: _Ref, node: ast.expr,
                          write: bool) -> _Ref:
        if base.kind == "path" and base.path is not None:
            self._emit(PathPattern(f"{base.path}[", exact=False),
                       write=write, node=node)
        elif base.kind == "fresh" and base.local is not None:
            self._emit(PathPattern(
                f"{self.fn.qualname}.<{base.local}>[", exact=False),
                write=write, node=node, local_root=base.local)
        elif write:
            self.mod.opaque_accesses += 1
        return _opaque()

    def _emit(self, path: PathPattern, write: bool, node: ast.expr,
              init: bool = False, local_root: Optional[str] = None) -> None:
        self.fn.sites.append(AccessSite(
            path=path, write=write, function=self.fn.qualname,
            file=self.mod.path, line=getattr(node, "lineno", self.fn.line),
            col=getattr(node, "col_offset", 0),
            locks=frozenset(self.held), stmt_index=self.cur_stmt,
            in_loop=self.loop_depth > 0, init=init, local_root=local_root))

    def _escape(self, ref: _Ref) -> None:
        if ref.kind == "fresh" and ref.local is not None:
            self.escaped.add(ref.local)

    # ------------------------------------------------------------------
    # Expressions
    # ------------------------------------------------------------------
    def _expr(self, node: ast.expr) -> _Ref:
        if isinstance(node, ast.Name):
            return self._name(node)
        if isinstance(node, ast.Attribute):
            base = self._expr(node.value)
            return self._attr_access(base, node.attr, node, write=False)
        if isinstance(node, ast.Subscript):
            base = self._expr(node.value)
            self._expr(node.slice)
            return self._subscript_access(base, node, write=False)
        if isinstance(node, ast.Call):
            return self._call(node)
        if isinstance(node, ast.Constant):
            return _opaque()
        if isinstance(node, (ast.List, ast.Tuple, ast.Set)):
            spawns: List[SpawnSite] = []
            for elt in node.elts:
                ref = self._expr(elt)
                spawns.extend(ref.spawns)
            if spawns:
                return _Ref(kind="spawns", spawns=spawns)
            return _Ref(kind="fresh", container=True)
        if isinstance(node, ast.Dict):
            for key in node.keys:
                if key is not None:
                    self._expr(key)
            for val in node.values:
                self._expr(val)
            return _Ref(kind="fresh", container=True)
        if isinstance(node, (ast.ListComp, ast.SetComp, ast.GeneratorExp)):
            self.loop_depth += 1
            for comp in node.generators:
                self._expr(comp.iter)
            ref = self._expr(node.elt)
            self.loop_depth -= 1
            if ref.spawns:
                return _Ref(kind="spawns", spawns=ref.spawns)
            return _Ref(kind="fresh", container=True)
        if isinstance(node, ast.DictComp):
            self.loop_depth += 1
            for comp in node.generators:
                self._expr(comp.iter)
            self._expr(node.key)
            self._expr(node.value)
            self.loop_depth -= 1
            return _Ref(kind="fresh", container=True)
        if isinstance(node, ast.IfExp):
            self._expr(node.test)
            self.cond_depth += 1
            self._expr(node.body)
            self._expr(node.orelse)
            self.cond_depth -= 1
            return _opaque()
        if isinstance(node, (ast.Yield, ast.YieldFrom, ast.Await)):
            if node.value is not None:
                return self._expr(node.value)
            return _opaque()
        if isinstance(node, ast.Lambda):
            return _opaque()
        # Everything else: visit child expressions for their effects.
        for child in ast.iter_child_nodes(node):
            if isinstance(child, ast.expr):
                self._expr(child)
        return _opaque()

    def _name(self, node: ast.Name) -> _Ref:
        name = node.id
        if name in self.local_names:
            return self.env.get(name, _opaque())
        mod = self.mod
        if name in mod.lock_symbols:
            return _Ref(kind="lock", lock=name)
        if name in mod.classes:
            return _Ref(kind="class", cls=name)
        if name in mod.func_nodes and "." not in name:
            return _Ref(kind="func", func=name)
        # Closure variable: a nested function (or sibling) defined in an
        # enclosing scope — resolve along the qualname ancestry.
        prefix = self.fn.qualname
        while "." in prefix or prefix not in ("", "<module>"):
            if f"{prefix}.{name}" in mod.func_nodes:
                return _Ref(kind="func", func=f"{prefix}.{name}")
            if "." not in prefix:
                break
            prefix = prefix.rsplit(".", 1)[0]
        if name in mod.imports:
            return _Ref(kind="module", module=mod.imports[name])
        if name in mod.data_globals:
            cls = mod.instance_of.get(name)
            # Instance globals merge into their class's abstract
            # location, the same abstraction `self` uses.
            ref = _Ref(kind="path", path=cls if cls else name, cls=cls)
            if name in mod.reassigned:
                self._emit(PathPattern(name), write=False, node=node)
            return ref
        return _opaque()

    # ------------------------------------------------------------------
    # Calls
    # ------------------------------------------------------------------
    def _call(self, node: ast.Call) -> _Ref:
        func = node.func
        # ops DSL: ops.rd("x") / ops.fork("w", body) / ...
        if isinstance(func, ast.Attribute) and isinstance(func.value,
                                                          ast.Name):
            alias = func.value.id
            origin = self.mod.imports.get(alias, "")
            if ((origin.split(".")[-1] == "ops" or alias == "ops")
                    and func.attr in _OPS_METHODS
                    and alias not in self.local_names):
                return self._ops_call(func.attr, node)

        fref = self._expr(func)
        if fref.kind == "op":
            return self._op_call(fref, node)

        origin = fref.module if fref.kind == "module" else None
        if origin is not None:
            if origin in _LOCK_FACTORIES:
                self._visit_args(node)
                return _Ref(kind="newlock")
            if origin == _THREAD_CLASS:
                return self._thread_ctor(node)
            if origin in _EXECUTOR_CLASSES:
                self._visit_args(node)
                return _Ref(kind="executor")
            if origin.split(".")[-1] == "Program":
                return self._program_ctor(node)
            self._visit_args(node)
            return _opaque()

        if fref.kind == "class" and fref.cls is not None:
            info = self.mod.classes[fref.cls]
            self._visit_args(node)
            if f"{fref.cls}.__init__" in self.mod.func_nodes:
                self.fn.calls.append(CallEdge(
                    self.fn.qualname, f"{fref.cls}.__init__",
                    frozenset(self.held)))
            if info.is_thread and "run" in info.methods:
                spawn = self._spawn(f"{fref.cls}.run", node, via="subclass")
                return _Ref(kind="spawns", spawns=[spawn])
            return _Ref(kind="path", path=fref.cls, cls=fref.cls)

        if fref.kind == "func" and fref.func is not None:
            self._visit_args(node)
            self.fn.calls.append(CallEdge(self.fn.qualname, fref.func,
                                          frozenset(self.held)))
            return _opaque()

        # Unknown callable: arguments escape.
        self._visit_args(node)
        if fref.kind == "fresh" and not fref.container:
            self._escape(fref)
        return _opaque()

    def _visit_args(self, node: ast.Call,
                    skip: int = 0) -> List[_Ref]:
        refs: List[_Ref] = []
        for i, arg in enumerate(node.args):
            ref = self._expr(arg)
            if i >= skip:
                self._escape(ref)
            refs.append(ref)
        for kw in node.keywords:
            ref = self._expr(kw.value)
            self._escape(ref)
            refs.append(ref)
        return refs

    def _kwarg(self, node: ast.Call, name: str) -> Optional[ast.expr]:
        for kw in node.keywords:
            if kw.arg == name:
                return kw.value
        return None

    def _entry_of(self, node: ast.expr) -> Optional[str]:
        ref = self._expr(node)
        if ref.kind == "func":
            return ref.func
        return None

    def _arg_roots(self, args: Sequence[ast.expr]) -> List[Optional[str]]:
        roots: List[Optional[str]] = []
        for arg in args:
            ref = self._expr(arg)
            roots.append(ref.path if ref.kind == "path" else None)
        return roots

    def _spawn(self, entry: Optional[str], node: ast.expr, via: str,
               label: Optional[str] = None,
               arg_roots: Optional[List[Optional[str]]] = None) -> SpawnSite:
        if entry is None:
            self.mod.unknown_entries += 1
        spawn = SpawnSite(
            entry=entry or "<unknown>",
            function=self.fn.qualname, file=self.mod.path,
            line=getattr(node, "lineno", self.fn.line),
            start_stmt=self.cur_stmt, via=via,
            in_loop=self.loop_depth > 0, conditional=self.cond_depth > 0,
            label=label, arg_roots=list(arg_roots or []))
        self.fn.spawns.append(spawn)
        return spawn

    def _thread_ctor(self, node: ast.Call) -> _Ref:
        target = self._kwarg(node, "target")
        entry = self._entry_of(target) if target is not None else None
        args_kw = self._kwarg(node, "args")
        arg_roots: List[Optional[str]] = []
        if args_kw is not None and isinstance(args_kw, (ast.Tuple, ast.List)):
            arg_roots = self._arg_roots(args_kw.elts)
        if target is None and not node.args and not node.keywords:
            return _opaque()
        spawn = self._spawn(entry, node, via="thread", arg_roots=arg_roots)
        return _Ref(kind="spawns", spawns=[spawn])

    def _program_ctor(self, node: ast.Call) -> _Ref:
        main = self._kwarg(node, "main")
        if main is None and len(node.args) >= 2:
            main = node.args[1]
        entry = self._entry_of(main) if main is not None else None
        if entry is not None:
            self._spawn(entry, node, via="program")
        return _opaque()

    def _op_call(self, fref: _Ref, node: ast.Call) -> _Ref:
        op = fref.op
        if op == "acquire" and fref.lock is not None:
            self.held.append(fref.lock)
            self.mod.acquired.add(fref.lock)
        elif op == "release" and fref.lock is not None:
            if fref.lock in self.held:
                self.held.remove(fref.lock)
        elif op == "start":
            for sp in fref.spawns:
                if self.cond_depth == 0:
                    sp.start_stmt = self.cur_stmt
                    sp.in_loop = sp.in_loop or self.loop_depth > 0
        elif op in ("join", "shutdown"):
            self._join_spawns(fref.spawns)
        elif op in ("submit", "map"):
            entry = self._entry_of(node.args[0]) if node.args else None
            arg_roots = self._arg_roots(node.args[1:])
            spawn = self._spawn(entry, node, via="executor",
                                arg_roots=arg_roots)
            # .map / repeated .submit may run many instances.
            if op == "map":
                spawn.in_loop = True
            fref.spawns.append(spawn)
            return _opaque()
        self._visit_args(node)
        return _opaque()

    def _join_spawns(self, spawns: Sequence[SpawnSite]) -> None:
        if self.cond_depth > 0:
            return
        for sp in spawns:
            sp.join_stmt = self.cur_stmt
            sp.join_conditional = False

    # ------------------------------------------------------------------
    # ops DSL
    # ------------------------------------------------------------------
    def _target_pattern(self, node: ast.expr) -> PathPattern:
        if isinstance(node, ast.Constant) and isinstance(node.value, str):
            return PathPattern(node.value)
        if isinstance(node, ast.JoinedStr):
            prefix_parts: List[str] = []
            for value in node.values:
                if isinstance(value, ast.Constant) and isinstance(
                        value.value, str):
                    prefix_parts.append(value.value)
                else:
                    break
            return PathPattern("".join(prefix_parts), exact=False)
        self._expr(node)
        return PathPattern("", exact=False)

    def _ops_call(self, op: str, node: ast.Call) -> _Ref:
        if op in ("rd", "wr") and node.args:
            pattern = self._target_pattern(node.args[0])
            self._emit(pattern, write=(op == "wr"), node=node)
        elif op in ("vrd", "vwr"):
            pass  # volatile sync accesses are never race candidates
        elif op == "acq" and node.args:
            pattern = self._target_pattern(node.args[0])
            if pattern.exact:
                self.held.append(pattern.prefix)
                self.mod.acquired.add(pattern.prefix)
        elif op == "rel" and node.args:
            pattern = self._target_pattern(node.args[0])
            if pattern.exact and pattern.prefix in self.held:
                self.held.remove(pattern.prefix)
        elif op == "fork" and len(node.args) >= 2:
            label_pat = self._target_pattern(node.args[0])
            entry = self._entry_of(node.args[1])
            self._spawn(entry, node, via="fork", label=label_pat.label())
        elif op == "join" and node.args:
            label_pat = self._target_pattern(node.args[0])
            if self.cond_depth == 0:
                for sp in self.fn.spawns:
                    if sp.label is not None and _labels_alias(
                            sp.label, label_pat.label()):
                        sp.join_stmt = self.cur_stmt
                        sp.join_conditional = False
        return _opaque()


def _merge(a: List[str], b: List[str]) -> List[str]:
    """Lockset intersection preserving order (of ``a``)."""
    remaining = list(b)
    out: List[str] = []
    for lock in a:
        if lock in remaining:
            remaining.remove(lock)
            out.append(lock)
    return out


def _labels_alias(a: str, b: str) -> bool:
    """Whether two fork/join label patterns (``"w*"`` style) may denote
    the same thread name."""
    pa = PathPattern(a[:-1], exact=False) if a.endswith("*") else PathPattern(a)
    pb = PathPattern(b[:-1], exact=False) if b.endswith("*") else PathPattern(b)
    return pa.may_alias(pb)


def lower_source(source: str, path: str = "<string>",
                 name: str = "<module>") -> ModuleIR:
    """Parse and lower Python source text into a :class:`ModuleIR`.

    Raises :class:`SyntaxError` when the source does not parse; the CLI
    maps that to the usage exit code (2).
    """
    tree = ast.parse(source, filename=path)
    return ModuleFrontend(tree, path, name).lower()


def lower_file(path: str, name: Optional[str] = None) -> ModuleIR:
    """Lower one Python file."""
    with open(path, "r", encoding="utf-8") as fh:
        source = fh.read()
    modname = name
    if modname is None:
        base = path.rsplit("/", 1)[-1]
        modname = base[:-3] if base.endswith(".py") else base
    return lower_source(source, path=path, name=modname)

"""Source-level static race analysis over real Python programs.

See :mod:`repro.static.pysrc.frontend` for the dual (threading + ops
DSL) lowering, :mod:`~repro.static.pysrc.threads` for the concurrency
model, :mod:`~repro.static.pysrc.report` for the SA2xx findings and the
tier lattice, and :mod:`~repro.static.pysrc.scan` for the entry points
used by ``vindicator scan``.
"""

from repro.static.pysrc.ir import (
    AccessSite,
    ModuleIR,
    PathPattern,
    SiteTier,
    SpawnSite,
)
from repro.static.pysrc.report import (
    Cluster,
    Finding,
    SOURCE_RULES,
    ScanReport,
)
from repro.static.pysrc.scan import (
    SCAN_SCHEMA_ID,
    ScanResult,
    scan_file,
    scan_path,
    scan_source,
)

__all__ = [
    "AccessSite",
    "Cluster",
    "Finding",
    "ModuleIR",
    "PathPattern",
    "SCAN_SCHEMA_ID",
    "SOURCE_RULES",
    "ScanReport",
    "ScanResult",
    "SiteTier",
    "SpawnSite",
    "scan_file",
    "scan_path",
    "scan_source",
]

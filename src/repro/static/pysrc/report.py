"""Tier classification and SA2xx race findings.

Sites are first merged into **alias clusters**: the transitive closure
of :meth:`PathPattern.may_alias` over all distinct patterns in the
module.  A wildcard pattern drags every path sharing its prefix into
its cluster, so a classification decision is always made over the whole
set of locations a pattern might touch — this is what keeps wildcard
pruning sound.

Each cluster is then placed on the tier lattice (``thread-local ⊑
read-shared ⊑ guarded ⊑ race-candidate``, mirroring the trace-level
:class:`repro.static.lockset.VariableVerdict`).  Only ``thread-local``
is prunable; the proof obligations per tier:

* ``thread-local`` — every site is rooted at a provably fresh
  non-escaping local, **or** all sites are reached by exactly one live
  entry that is not self-concurrent and the module spawned no
  unresolvable entry.
* ``read-shared`` — no (reached, non-init) write.
* ``guarded`` — some lock is in the effective lockset of every
  reached, non-init site.
* ``race-candidate`` — everything else.

Findings pair conflicting sites within race-candidate clusters:

* ``SA201`` (error) — concurrent conflicting accesses, neither side
  holds any lock;
* ``SA202`` (error) — concurrent conflicting accesses, exactly one
  side locked (the classic missed-lock bug);
* ``SA203`` (error) — both sides locked but with disjoint locksets
  (inconsistent lock discipline);
* ``SA210`` (warning) — like the above, but the sites' paths only
  *may* alias through a wildcard pattern rather than matching exactly,
  so confidence is lower.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Set, Tuple

from repro.static.lint import Severity
from repro.static.pysrc.ir import (
    AccessSite,
    ModuleIR,
    PathPattern,
    SiteTier,
)
from repro.static.pysrc.threads import ThreadModel

#: Source-level rule registry, continuing the SA1xx trace-level table
#: in :mod:`repro.static.lint`.
SOURCE_RULES: Dict[str, Tuple[Severity, str]] = {
    "SA201": (Severity.ERROR,
              "concurrent conflicting accesses with no locking"),
    "SA202": (Severity.ERROR,
              "concurrent conflicting accesses, only one side locked"),
    "SA203": (Severity.ERROR,
              "concurrent conflicting accesses under disjoint locksets"),
    "SA210": (Severity.WARNING,
              "possible race between wildcard-aliased access paths"),
}


@dataclass
class Cluster:
    """An alias-closed group of access sites sharing one abstract
    location (or set of locations, for wildcards)."""

    label: str
    patterns: List[PathPattern]
    sites: List[AccessSite]
    tier: SiteTier = SiteTier.RACE_CANDIDATE

    def matches(self, name: str) -> bool:
        return any(p.matches(name) for p in self.patterns)

    def counted_sites(self) -> List[AccessSite]:
        """Sites that participate in classification: reached and not
        import-time initialisation."""
        return [s for s in self.sites if s.reached and not s.init]


@dataclass
class Finding:
    code: str
    severity: Severity
    message: str
    path: str
    a: AccessSite
    b: AccessSite

    def location(self) -> str:
        return f"{self.a.file}:{self.a.line}"


@dataclass
class ScanReport:
    """Everything the scan learned about one module."""

    module: ModuleIR
    model: ThreadModel
    clusters: List[Cluster] = field(default_factory=list)
    findings: List[Finding] = field(default_factory=list)

    def candidate_labels(self) -> List[str]:
        return [c.label for c in self.clusters
                if c.tier is SiteTier.RACE_CANDIDATE]

    def pruned_labels(self) -> List[str]:
        return [c.label for c in self.clusters
                if c.tier is SiteTier.THREAD_LOCAL]

    def covers(self, name: str) -> bool:
        """Whether ``name`` (a concrete dynamic race variable) is
        matched by some race-candidate cluster."""
        return any(c.matches(name) for c in self.clusters
                   if c.tier is SiteTier.RACE_CANDIDATE)

    def pruned_matches(self, name: str) -> bool:
        """Whether ``name`` is matched by a pruned cluster (must never
        hold for a dynamically racing variable)."""
        return any(c.matches(name) for c in self.clusters
                   if c.tier is SiteTier.THREAD_LOCAL)

    def error_count(self) -> int:
        return sum(1 for f in self.findings
                   if f.severity is Severity.ERROR)


# ----------------------------------------------------------------------
# Clustering
# ----------------------------------------------------------------------
def build_clusters(module: ModuleIR) -> List[Cluster]:
    sites = module.all_sites()
    patterns: List[PathPattern] = []
    seen: Set[Tuple[str, bool]] = set()
    for site in sites:
        key = (site.path.prefix, site.path.exact)
        if key not in seen:
            seen.add(key)
            patterns.append(site.path)
    # Union-find over patterns under may_alias.
    parent = list(range(len(patterns)))

    def find(i: int) -> int:
        while parent[i] != i:
            parent[i] = parent[parent[i]]
            i = parent[i]
        return i

    for i in range(len(patterns)):
        for j in range(i + 1, len(patterns)):
            if patterns[i].may_alias(patterns[j]):
                ri, rj = find(i), find(j)
                if ri != rj:
                    parent[rj] = ri

    groups: Dict[int, List[PathPattern]] = {}
    index: Dict[Tuple[str, bool], int] = {}
    for i, pattern in enumerate(patterns):
        root = find(i)
        groups.setdefault(root, []).append(pattern)
        index[(pattern.prefix, pattern.exact)] = root

    clusters: Dict[int, Cluster] = {}
    for root, pats in groups.items():
        exact = [p for p in pats if p.exact]
        label = (min(p.label() for p in exact) if exact
                 else min(p.label() for p in pats))
        clusters[root] = Cluster(label=label, patterns=sorted(
            pats, key=lambda p: p.label()), sites=[])
    for site in sites:
        clusters[index[(site.path.prefix, site.path.exact)]].sites.append(
            site)
    return sorted(clusters.values(), key=lambda c: c.label)


# ----------------------------------------------------------------------
# Tier classification
# ----------------------------------------------------------------------
def classify(clusters: List[Cluster], model: ThreadModel) -> None:
    for cluster in clusters:
        cluster.tier = _tier(cluster, model)
        for site in cluster.sites:
            site.reached = model.is_reached(site.function)
            site.tier = cluster.tier


def _tier(cluster: Cluster, model: ThreadModel) -> SiteTier:
    for site in cluster.sites:
        site.reached = model.is_reached(site.function)
    if all(s.local_root is not None for s in cluster.sites):
        return SiteTier.THREAD_LOCAL
    counted = cluster.counted_sites()
    if not counted:
        # Only unreached or init-time sites: nothing concurrent ever
        # touches this path, but keep it instrumented (not thread-local)
        # so the closed-module assumption is not load-bearing here.
        return SiteTier.READ_SHARED
    if not model.has_unknown_entry \
            and all(s.local_root is None for s in counted):
        if model.concurrent_entry_count(counted) <= 1:
            return SiteTier.THREAD_LOCAL
    if not any(s.write for s in counted):
        return SiteTier.READ_SHARED
    common: FrozenSet[str] = counted[0].effective_locks
    for site in counted[1:]:
        common = common & site.effective_locks
    if common:
        return SiteTier.GUARDED
    return SiteTier.RACE_CANDIDATE


# ----------------------------------------------------------------------
# Findings
# ----------------------------------------------------------------------
def pair_findings(clusters: List[Cluster],
                  model: ThreadModel) -> List[Finding]:
    findings: List[Finding] = []
    reported: Set[Tuple[str, str, Tuple[str, int, int, bool],
                        Tuple[str, int, int, bool]]] = set()
    for cluster in clusters:
        if cluster.tier is not SiteTier.RACE_CANDIDATE:
            continue
        counted = cluster.counted_sites()
        for i, a in enumerate(counted):
            for b in counted[i:]:
                finding = _pair(cluster, a, b, model)
                if finding is None:
                    continue
                key = (finding.code, finding.path,
                       _site_key(finding.a), _site_key(finding.b))
                if key in reported:
                    continue
                reported.add(key)
                findings.append(finding)
    findings.sort(key=lambda f: (f.a.file, f.a.line, f.code, f.path))
    return findings


def _site_key(site: AccessSite) -> Tuple[str, int, int, bool]:
    return (site.file, site.line, site.col, site.write)


def _pair(cluster: Cluster, a: AccessSite, b: AccessSite,
          model: ThreadModel) -> Optional[Finding]:
    if not (a.write or b.write):
        return None
    if not a.path.may_alias(b.path):
        return None
    if a.effective_locks & b.effective_locks:
        return None
    if not model.may_run_concurrently(a, b):
        return None
    if a.line > b.line or (a.line == b.line and a.col > b.col):
        a, b = b, a
    exact_alias = (a.path.exact and b.path.exact
                   and a.path.prefix == b.path.prefix)
    if not exact_alias:
        code = "SA210"
    elif not a.effective_locks and not b.effective_locks:
        code = "SA201"
    elif a.effective_locks and b.effective_locks:
        code = "SA203"
    else:
        code = "SA202"
    severity, summary = SOURCE_RULES[code]
    kinds = f"{a.kind}@{a.function}:{a.line} vs {b.kind}@{b.function}:{b.line}"
    message = f"{summary}: '{cluster.label}' ({kinds})"
    return Finding(code=code, severity=severity, message=message,
                   path=cluster.label, a=a, b=b)


def build_report(module: ModuleIR, model: ThreadModel) -> ScanReport:
    clusters = build_clusters(module)
    classify(clusters, model)
    findings = pair_findings(clusters, model)
    return ScanReport(module=module, model=model, clusters=clusters,
                      findings=findings)

"""Static analyses over traces-as-artifacts.

Unlike :mod:`repro.analysis` (online detectors that compute ordering
relations event by event), this package treats a recorded trace as a
*static artifact* and analyses its structure in single linear passes:

* :mod:`repro.static.lint` — a collecting trace linter with stable rule
  codes (``SA1xx``), complementing ``Trace``'s fail-fast validation;
  exposed as ``vindicator lint``;
* :mod:`repro.static.lockset` — Eraser-style lockset + thread-locality
  verdicts per variable. The verdicts are sound exclusions for
  *predictive* race detection, so they serve double duty as the
  detectors' fast-path pre-filter and as an independent
  over-approximation the detectors are cross-checked against
  (``--sanitize``, :func:`~repro.static.lockset.cross_check`).
"""

from repro.static.lint import (
    RULES,
    Diagnostic,
    Severity,
    lint_events,
    max_severity,
)
from repro.static.lockset import (
    LocksetResult,
    VariableInfo,
    VariableVerdict,
    analyze_locksets,
    cross_check,
)

__all__ = [
    "Diagnostic",
    "LocksetResult",
    "RULES",
    "Severity",
    "VariableInfo",
    "VariableVerdict",
    "analyze_locksets",
    "cross_check",
    "lint_events",
    "max_severity",
]

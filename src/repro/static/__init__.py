"""Static analyses over traces-as-artifacts.

Unlike :mod:`repro.analysis` (online detectors that compute ordering
relations event by event), this package treats a recorded trace as a
*static artifact* and analyses its structure in single linear passes:

* :mod:`repro.static.lint` — a collecting trace linter with stable rule
  codes (``SA1xx``), complementing ``Trace``'s fail-fast validation;
  exposed as ``vindicator lint``;
* :mod:`repro.static.lockset` — Eraser-style lockset + thread-locality
  verdicts per variable. The verdicts are sound exclusions for
  *predictive* race detection, so they serve double duty as the
  detectors' fast-path pre-filter and as an independent
  over-approximation the detectors are cross-checked against
  (``--sanitize``, :func:`~repro.static.lockset.cross_check`);
* :mod:`repro.static.pysrc` — source-level static race analysis over
  real ``threading`` Python programs (and the generator DSL): thread
  structure, shared-access collection, lockset inference, ``SA2xx``
  findings, and the instrumentation plan that feeds the dynamic
  pipeline. Exposed as ``vindicator scan``.
"""

from repro.static.lint import (
    LINT_SCHEMA_ID,
    RULES,
    Diagnostic,
    Severity,
    lint_document,
    lint_events,
    max_severity,
)
from repro.static.lockset import (
    LocksetResult,
    VariableInfo,
    VariableVerdict,
    analyze_locksets,
    cross_check,
)
from repro.static.pysrc import (
    SCAN_SCHEMA_ID,
    ScanResult,
    SiteTier,
    scan_file,
    scan_path,
    scan_source,
)

__all__ = [
    "Diagnostic",
    "LINT_SCHEMA_ID",
    "LocksetResult",
    "RULES",
    "SCAN_SCHEMA_ID",
    "ScanResult",
    "Severity",
    "SiteTier",
    "VariableInfo",
    "VariableVerdict",
    "analyze_locksets",
    "cross_check",
    "lint_document",
    "lint_events",
    "max_severity",
    "scan_file",
    "scan_path",
    "scan_source",
]

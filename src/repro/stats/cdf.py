"""Cumulative distributions and text rendering (Figure 6).

Figure 6 plots, for each race class, the percentage of dynamic races
whose event distance is *at least* x — a complementary CDF on a log-x
axis. This module computes those series and renders them as an ASCII
plot / CSV so the benchmark harness can regenerate the figure without a
plotting stack.
"""

from __future__ import annotations

import math
from typing import Dict, List, Sequence, Tuple


def survival_series(values: Sequence[int]) -> List[Tuple[int, float]]:
    """The complementary CDF of ``values``: sorted ``(x, pct)`` pairs where
    ``pct`` is the percentage of values ≥ x."""
    if not values:
        return []
    ordered = sorted(values)
    n = len(ordered)
    series: List[Tuple[int, float]] = []
    for i, x in enumerate(ordered):
        if i > 0 and x == ordered[i - 1]:
            continue  # one point per distinct x: the fraction ≥ x
        series.append((x, 100.0 * (n - i) / n))
    return series


def percentage_at_least(values: Sequence[int], threshold: int) -> float:
    """Percentage of values ≥ threshold (a single Figure 6 read-off)."""
    if not values:
        return 0.0
    return 100.0 * sum(1 for v in values if v >= threshold) / len(values)


def median(values: Sequence[int]) -> float:
    """The median (50th-percentile read-off of Figure 6's series)."""
    if not values:
        return 0.0
    ordered = sorted(values)
    n = len(ordered)
    mid = n // 2
    if n % 2:
        return float(ordered[mid])
    return (ordered[mid - 1] + ordered[mid]) / 2.0


def ascii_cdf_plot(series: Dict[str, Sequence[int]], width: int = 64,
                   height: int = 16) -> str:
    """Render survival curves as an ASCII plot with a log-scaled x axis.

    Args:
        series: Label -> event distances.
        width, height: Plot dimensions in characters.
    """
    nonempty = {k: v for k, v in series.items() if v}
    if not nonempty:
        return "(no dynamic races)"
    max_x = max(max(v) for v in nonempty.values())
    log_max = max(1.0, math.log10(max_x))
    grid = [[" "] * width for _ in range(height)]
    markers = "*o+x#@"
    legend = []
    for idx, (label, values) in enumerate(nonempty.items()):
        marker = markers[idx % len(markers)]
        legend.append(f"  {marker} {label} (n={len(values)})")
        for x, pct in survival_series(values):
            col = int(round(math.log10(max(x, 1)) / log_max * (width - 1)))
            row = int(round((100.0 - pct) / 100.0 * (height - 1)))
            grid[row][col] = marker
    lines = ["% of dynamic races with at least the given event distance"]
    for i, row in enumerate(grid):
        pct_label = 100 - int(round(i / (height - 1) * 100))
        lines.append(f"{pct_label:3d}% |" + "".join(row))
    lines.append("     +" + "-" * width)
    lines.append(f"      1 ... log10(event distance) ... {max_x:,}")
    lines.extend(legend)
    return "\n".join(lines)


def cdf_csv(series: Dict[str, Sequence[int]]) -> str:
    """The survival series as CSV (``class,distance,percent``)."""
    rows = ["class,event_distance,percent_at_least"]
    for label, values in series.items():
        for x, pct in survival_series(values):
            rows.append(f"{label},{x},{pct:.2f}")
    return "\n".join(rows)

"""Event-distance statistics (Table 2 and Figure 6).

A dynamic race's *event distance* is how far apart its two conflicting
events occurred in the observed total order ``<_tr`` (Section 6.3). The
paper uses it to show that DC-only races live an order of magnitude
farther apart than HB- or WCP-only races — out of reach of
bounded-window predictive analyses.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, Iterable, List, Optional

from repro.analysis.races import DynamicRace, RaceClass, static_races


@dataclass
class DistanceRange:
    """Min/max event distance over a set of dynamic races (a Table 2 row)."""

    minimum: int
    maximum: int
    count: int

    def __str__(self) -> str:
        if self.minimum == self.maximum:
            return f"{self.minimum:,}"
        return f"{self.minimum:,}-{self.maximum:,}"


def distance_range(races: Iterable[DynamicRace]) -> Optional[DistanceRange]:
    """The range of event distances across dynamic races (None if empty)."""
    distances = [race.event_distance for race in races]
    if not distances:
        return None
    return DistanceRange(minimum=min(distances), maximum=max(distances),
                         count=len(distances))


def static_distance_ranges(
    races: Iterable[DynamicRace],
) -> Dict[FrozenSet[str], DistanceRange]:
    """Per statically distinct race, the dynamic instances' distance range
    (Table 2's *Event distance* column)."""
    out: Dict[FrozenSet[str], DistanceRange] = {}
    for key, group in static_races(races).items():
        rng = distance_range(group)
        assert rng is not None
        out[key] = rng
    return out


def distances_by_class(
    races: Iterable[DynamicRace],
) -> Dict[RaceClass, List[int]]:
    """Group dynamic races' event distances by race class (Figure 6's
    three series). Races without a classification are skipped."""
    out: Dict[RaceClass, List[int]] = {}
    for race in races:
        if race.race_class is not None:
            out.setdefault(race.race_class, []).append(race.event_distance)
    return out

"""Statistics helpers for the evaluation: distances, CDFs."""

from repro.stats.distances import (
    DistanceRange,
    distance_range,
    distances_by_class,
    static_distance_ranges,
)
from repro.stats.cdf import (
    ascii_cdf_plot,
    cdf_csv,
    median,
    percentage_at_least,
    survival_series,
)

__all__ = [
    "DistanceRange",
    "ascii_cdf_plot",
    "cdf_csv",
    "distance_range",
    "distances_by_class",
    "median",
    "percentage_at_least",
    "static_distance_ranges",
    "survival_series",
]

"""repro — a reproduction of Vindicator (PLDI 2018).

*High-Coverage, Unbounded Sound Predictive Race Detection* by Jake
Roemer, Kaan Genç, and Michael D. Bond.

The library predicts data races from a single observed execution trace:

>>> from repro import TraceBuilder, Vindicator
>>> trace = (TraceBuilder()
...          .wr(1, "x").acq(1, "m").wr(1, "z").rel(1, "m")
...          .acq(2, "m").rd(2, "y").rel(2, "m").rd(2, "x")
...          .build())
>>> report = Vindicator(vindicate_all=True).run(trace)
>>> report.dc.dynamic_count
1

Public API layers:

* :mod:`repro.core` — events, traces, vector clocks;
* :mod:`repro.analysis` — HB, WCP, and DC online detectors plus exact
  reference engines;
* :mod:`repro.graph` — the constraint graph;
* :mod:`repro.vindicate` — VindicateRace, the witness checker, the
  brute-force predictability oracle, and the end-to-end
  :class:`~repro.vindicate.vindicator.Vindicator`;
* :mod:`repro.runtime` — the execution substrate and DaCapo-analog
  workloads used by the benchmarks;
* :mod:`repro.traces` — litmus traces from the paper, random trace
  generation, and trace file IO;
* :mod:`repro.stats` — event-distance statistics and table helpers.
"""

from repro.core.events import Event, EventKind, conflicts
from repro.core.trace import Trace, TraceBuilder
from repro.core.vectorclock import Epoch, VectorClock
from repro.core.exceptions import (
    MalformedReorderingError,
    MalformedTraceError,
    ReproError,
    TraceFormatError,
    VindicationError,
)
from repro.analysis.base import Detector
from repro.analysis.hb import HBDetector
from repro.analysis.wcp import WCPDetector
from repro.analysis.dc import DCDetector
from repro.analysis.fasttrack import FastTrackDetector
from repro.analysis.races import DynamicRace, RaceClass, RaceReport, static_races
from repro.analysis.reference import ReferenceAnalysis
from repro.graph.constraint_graph import ConstraintGraph
from repro.vindicate.vindicator import (
    Verdict,
    Vindication,
    Vindicator,
    VindicatorReport,
    vindicate_race,
)
from repro.vindicate.verify import check_correct_reordering, check_witness
from repro.vindicate.oracle import OracleBudgetExceededError, PredictabilityOracle

__version__ = "1.0.0"

__all__ = [
    "ConstraintGraph",
    "DCDetector",
    "Detector",
    "DynamicRace",
    "Epoch",
    "Event",
    "EventKind",
    "FastTrackDetector",
    "HBDetector",
    "MalformedReorderingError",
    "MalformedTraceError",
    "OracleBudgetExceededError",
    "PredictabilityOracle",
    "RaceClass",
    "RaceReport",
    "ReferenceAnalysis",
    "ReproError",
    "Trace",
    "TraceBuilder",
    "TraceFormatError",
    "VectorClock",
    "Verdict",
    "Vindication",
    "VindicationError",
    "Vindicator",
    "VindicatorReport",
    "WCPDetector",
    "check_correct_reordering",
    "check_witness",
    "conflicts",
    "static_races",
    "vindicate_race",
]

"""Command-line interface: ``vindicator`` / ``python -m repro``.

Sub-commands:

* ``analyze <trace-file>`` — run HB, WCP, and DC analyses plus
  vindication on a text-format trace (see :mod:`repro.traces.io`) and
  print the race report;
* ``litmus [name]`` — run the paper's litmus executions (all, or one by
  name) and show what each analysis finds;
* ``workload <name>`` — execute a DaCapo-analog workload and analyze its
  trace.

Examples::

    vindicator litmus figure2
    vindicator analyze mytrace.txt --vindicate-all --witness
    vindicator workload xalan --seed 3 --scale 0.5
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.analysis.races import RaceClass
from repro.stats.distances import static_distance_ranges
from repro.traces.render import render_witness
from repro.traces.io import load_trace
from repro.traces.litmus import ALL as LITMUS
from repro.vindicate.vindicator import Vindicator, VindicatorReport


def _print_report(report: VindicatorReport, show_witness: bool) -> None:
    print(f"trace: {len(report.trace)} events, "
          f"{len(report.trace.threads)} threads")
    for analysis in (report.hb, report.wcp, report.dc):
        print(f"  {analysis}")
    by_class = report.dc.by_class()
    for race_class in RaceClass:
        races = by_class.get(race_class, [])
        if races:
            print(f"  {race_class}: {len(races)} dynamic")
    if report.vindications:
        print("vindication:")
        for v in report.vindications:
            print(f"  {v.race}")
            print(f"    -> {v.verdict} (LS constraints: {v.ls_constraints}, "
                  f"attempts: {v.attempts}, {v.elapsed_seconds * 1e3:.1f} ms)")
            if show_witness and v.witness is not None:
                print("    witness (correctly reordered trace):")
                for line in render_witness(v.witness, v.race.first,
                                           v.race.second).splitlines():
                    print(f"      {line}")
    ranges = static_distance_ranges(
        [r for r in report.dc.races if r.race_class is RaceClass.DC_ONLY])
    if ranges:
        print("DC-only static races (event distances):")
        for key, rng in ranges.items():
            locs = " <-> ".join(sorted(key))
            print(f"  {locs}: {rng}")


def _cmd_analyze(args: argparse.Namespace) -> int:
    trace = load_trace(args.trace)
    vindicator = Vindicator(vindicate_all=args.vindicate_all,
                            policy=args.policy)
    report = vindicator.run(trace)
    _print_report(report, show_witness=args.witness)
    return 0


def _cmd_litmus(args: argparse.Namespace) -> int:
    names = [args.name] if args.name else list(LITMUS)
    for name in names:
        factory = LITMUS.get(name)
        if factory is None:
            print(f"unknown litmus trace {name!r}; available: "
                  f"{', '.join(LITMUS)}", file=sys.stderr)
            return 2
        print(f"=== {name} ===")
        vindicator = Vindicator(vindicate_all=True,
                                transitive_force=not name.startswith("figure4"))
        _print_report(vindicator.run(factory()), show_witness=args.witness)
        print()
    return 0


def _cmd_workload(args: argparse.Namespace) -> int:
    from repro.runtime import execute, fast_path_filter
    from repro.runtime.workloads import WORKLOADS

    factory = WORKLOADS.get(args.name)
    if factory is None:
        print(f"unknown workload {args.name!r}; available: "
              f"{', '.join(WORKLOADS)}", file=sys.stderr)
        return 2
    trace = execute(factory(scale=args.scale), seed=args.seed)
    if args.fast_path:
        trace, stats = fast_path_filter(trace)
        print(f"fast path removed {stats.removed} of {stats.original_events} "
              f"events ({stats.hit_rate:.0%})")
    report = Vindicator(vindicate_all=args.vindicate_all).run(trace)
    _print_report(report, show_witness=args.witness)
    return 0


def build_parser() -> argparse.ArgumentParser:
    """The CLI argument parser (exposed for testing)."""
    parser = argparse.ArgumentParser(
        prog="vindicator",
        description="Sound predictive data race detection (Vindicator, "
                    "PLDI 2018 reproduction)")
    sub = parser.add_subparsers(dest="command", required=True)

    analyze = sub.add_parser("analyze", help="analyze a text-format trace file")
    analyze.add_argument("trace", help="path to the trace file")
    analyze.add_argument("--vindicate-all", action="store_true",
                         help="vindicate every DC-race, not only DC-only ones")
    analyze.add_argument("--policy", choices=("latest", "earliest", "random"),
                         default="latest", help="greedy construction policy")
    analyze.add_argument("--witness", action="store_true",
                         help="print witness traces for confirmed races")
    analyze.set_defaults(func=_cmd_analyze)

    litmus = sub.add_parser("litmus", help="run the paper's litmus executions")
    litmus.add_argument("name", nargs="?", help="litmus trace name "
                        f"({', '.join(LITMUS)})")
    litmus.add_argument("--witness", action="store_true")
    litmus.set_defaults(func=_cmd_litmus)

    workload = sub.add_parser("workload", help="run a DaCapo-analog workload")
    workload.add_argument("name", help="workload name (e.g. xalan)")
    workload.add_argument("--seed", type=int, default=0)
    workload.add_argument("--scale", type=float, default=1.0)
    workload.add_argument("--fast-path", action="store_true",
                          help="apply the redundant-access fast path")
    workload.add_argument("--vindicate-all", action="store_true")
    workload.add_argument("--witness", action="store_true")
    workload.set_defaults(func=_cmd_workload)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point."""
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())

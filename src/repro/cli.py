"""Command-line interface: ``vindicator`` / ``python -m repro``.

Sub-commands:

* ``analyze <trace-file>`` — run HB, WCP, and DC analyses plus
  vindication on a text-format trace (see :mod:`repro.traces.io`) and
  print the race report;
* ``lint <trace-file>`` — run the collecting trace linter
  (:mod:`repro.static.lint`) and print every finding with its stable
  rule code; accepts traces too malformed to analyze;
* ``scan <file|package>`` — run the source-level static race analysis
  (:mod:`repro.static.pysrc`) over real Python ``threading`` code (or
  generator-model programs): SA2xx findings plus the
  ``vindicator.scan/1`` instrumentation plan with ``--json``;
* ``litmus [name]`` — run the paper's litmus executions (all, or one by
  name) and show what each analysis finds;
* ``workload <name>`` — execute a DaCapo-analog workload and analyze its
  trace;
* ``profile <trace-file|workload>`` — run the full pipeline with
  observability enabled and print the per-phase span tree plus the
  metrics summary (see :mod:`repro.obs`);
* ``serve`` — run the streaming analysis daemon (:mod:`repro.serve`):
  long-lived client sessions over unix/TCP sockets speaking the framed
  ``vindicator.serve/1`` protocol, a ``*.trace`` drop directory,
  windowed metadata GC, checkpoint/resume, and live Prometheus
  ``/metrics`` (see ``docs/SERVING.md``).

``analyze``, ``litmus``, and ``workload`` accept ``--prefilter`` (skip
vector-clock race checks on variables the lockset pre-analysis proves
race-free) and ``--sanitize`` (cross-check every detector's races
against that pre-analysis; exit 1 on a violation). ``analyze`` and
``workload`` accept ``--json`` to emit the machine-readable
``vindicator.analyze/1`` document instead of the human report.

The global ``--metrics <path>`` flag (before the sub-command) enables
the observability subsystem for any command and exports by extension:
``*.jsonl`` streams span/metrics records, ``*.json`` writes the
snapshot document, ``*.prom``/``*.txt`` writes Prometheus text.

``lint`` and ``scan`` share one exit-code contract so both work as CI
gates: **0** — clean, or warnings/notes only; **1** — at least one
error-severity finding; **2** — usage failure (missing or unreadable
input, unparsable source).

Examples::

    vindicator litmus figure2
    vindicator analyze mytrace.txt --vindicate-all --witness
    vindicator analyze mytrace.txt --prefilter --sanitize --json
    vindicator lint mytrace.txt
    vindicator lint mytrace.txt --json
    vindicator scan examples/broken_cache.py
    vindicator scan examples/ --json
    vindicator workload xalan --seed 3 --scale 0.5
    vindicator --metrics run.jsonl workload avrora
    vindicator profile xalan --scale 0.5
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from typing import List, Optional

from repro import obs
from repro.analysis.races import RaceClass
from repro.analysis.variants import VariantSpec, resolve as resolve_variant
from repro.core import kernels
from repro.core.exceptions import SanitizerError
from repro.static.lint import Severity, lint_document, lint_events
from repro.stats.distances import static_distance_ranges
from repro.traces.render import render_witness
from repro.traces.io import load_events, load_trace
from repro.traces.litmus import ALL as LITMUS
from repro.vindicate.vindicator import Vindicator, VindicatorReport


def _print_report(report: VindicatorReport, show_witness: bool) -> None:
    print(f"trace: {len(report.trace)} events, "
          f"{len(report.trace.threads)} threads")
    if report.lockset is not None:
        print(f"  lockset pre-analysis: {report.lockset.summary()}")
    for analysis in (report.hb, report.wcp, report.dc):
        print(f"  {analysis}")
        skipped = analysis.counters.get("lockset_skipped")
        if skipped is not None:
            checked = analysis.counters.get("lockset_checked", 0)
            total = skipped + checked
            rate = skipped / total if total else 0.0
            print(f"    pre-filter: skipped {skipped} of {total} "
                  f"access checks ({rate:.0%})")
    by_class = report.dc.by_class()
    for race_class in RaceClass:
        races = by_class.get(race_class, [])
        if races:
            print(f"  {race_class}: {len(races)} dynamic")
    if report.vindications:
        print("vindication:")
        for v in report.vindications:
            print(f"  {v.race}")
            print(f"    -> {v.verdict} (LS constraints: {v.ls_constraints}, "
                  f"attempts: {v.attempts}, {v.elapsed_seconds * 1e3:.1f} ms)")
            if show_witness and v.witness is not None:
                print("    witness (correctly reordered trace):")
                for line in render_witness(v.witness, v.race.first,
                                           v.race.second).splitlines():
                    print(f"      {line}")
    ranges = static_distance_ranges(
        [r for r in report.dc.races if r.race_class is RaceClass.DC_ONLY])
    if ranges:
        print("DC-only static races (event distances):")
        for key, rng in ranges.items():
            locs = " <-> ".join(sorted(key))
            print(f"  {locs}: {rng}")


def _variant_spec(args: argparse.Namespace) -> VariantSpec:
    """The resolved detector-variant × kernel-backend selection.

    ``--fast-vc`` and ``--batch`` compose rather than conflict (batch
    subsumes fast-vc), and the global ``--kernels`` choice rides along
    in the spec so pool workers and shards inherit it resolved."""
    return resolve_variant(fast_vc=getattr(args, "fast_vc", False),
                           batch=getattr(args, "batch", False),
                           kernels_backend=args.kernels)


def _run_and_print(vindicator: Vindicator, trace, show_witness: bool,
                   as_json: bool = False) -> int:
    try:
        report = vindicator.run(trace)
    except SanitizerError as exc:
        print(exc, file=sys.stderr)
        return 1
    if as_json:
        json.dump(report.to_document(), sys.stdout, indent=2, sort_keys=True)
        print()
    else:
        _print_report(report, show_witness=show_witness)
    return 0


def _cmd_analyze(args: argparse.Namespace) -> int:
    trace = load_trace(args.trace)
    vindicator = Vindicator(vindicate_all=args.vindicate_all,
                            policy=args.policy,
                            prefilter=args.prefilter,
                            sanitize=args.sanitize,
                            jobs=args.jobs,
                            variant=_variant_spec(args))
    return _run_and_print(vindicator, trace, args.witness,
                          as_json=args.json)


def _cmd_lint(args: argparse.Namespace) -> int:
    # Exit-code contract (shared with `scan`, documented above): 0 =
    # clean or warnings/notes only, 1 = error findings, 2 = unusable
    # input. `lint` accepts traces `analyze` rejects, so only I/O
    # failures are usage errors here.
    try:
        events, line_numbers = load_events(args.trace)
    except OSError as exc:
        print(f"cannot read trace {args.trace!r}: {exc}", file=sys.stderr)
        return 2
    diagnostics = lint_events(events)
    by_severity = {severity: 0 for severity in Severity}
    for diag in diagnostics:
        by_severity[diag.severity] += 1
    if args.json:
        doc = lint_document(args.trace, len(events), diagnostics,
                            line_numbers)
        json.dump(doc, sys.stdout, indent=2, sort_keys=True)
        print()
    else:
        for diag in diagnostics:
            line = (line_numbers[diag.event_index]
                    if 0 <= diag.event_index < len(line_numbers) else None)
            print(f"{args.trace}:{diag.format(line)}")
        print(f"{len(events)} events: "
              f"{by_severity[Severity.ERROR]} error(s), "
              f"{by_severity[Severity.WARNING]} warning(s), "
              f"{by_severity[Severity.NOTE]} note(s)")
    return 1 if by_severity[Severity.ERROR] else 0


def _cmd_scan(args: argparse.Namespace) -> int:
    from repro.static.pysrc import scan_path

    try:
        result = scan_path(args.path)
    except OSError as exc:
        print(f"cannot read {args.path!r}: {exc}", file=sys.stderr)
        return 2
    except SyntaxError as exc:
        print(f"cannot parse {args.path!r}: {exc}", file=sys.stderr)
        return 2
    if not result.reports and not result.failed:
        print(f"no Python files under {args.path!r}", file=sys.stderr)
        return 2
    if args.json:
        json.dump(result.to_document(), sys.stdout, indent=2,
                  sort_keys=True)
        print()
        return 1 if result.error_count() else 0
    for path, message in sorted(result.failed.items()):
        print(f"{path}: skipped (syntax error: {message})",
              file=sys.stderr)
    for report in result.reports:
        module = report.module
        for finding in report.findings:
            print(f"{finding.a.file}:{finding.a.line}: {finding.code} "
                  f"{finding.severity}: {finding.message}")
        sites = module.all_sites()
        pruned = len(report.pruned_labels())
        print(f"{module.path}: {len(sites)} site(s), "
              f"{len(report.clusters)} path(s) "
              f"({len(report.candidate_labels())} race-candidate, "
              f"{pruned} pruned thread-local), "
              f"{len(report.findings)} finding(s)")
    return 1 if result.error_count() else 0


def _cmd_litmus(args: argparse.Namespace) -> int:
    names = [args.name] if args.name else list(LITMUS)
    for name in names:
        factory = LITMUS.get(name)
        if factory is None:
            print(f"unknown litmus trace {name!r}; available: "
                  f"{', '.join(LITMUS)}", file=sys.stderr)
            return 2
        print(f"=== {name} ===")
        vindicator = Vindicator(vindicate_all=True,
                                transitive_force=not name.startswith("figure4"),
                                prefilter=args.prefilter,
                                sanitize=args.sanitize,
                                jobs=args.jobs,
                                variant=_variant_spec(args))
        status = _run_and_print(vindicator, factory(), args.witness)
        if status:
            return status
        print()
    return 0


def _cmd_workload(args: argparse.Namespace) -> int:
    from repro.runtime import execute, fast_path_filter
    from repro.runtime.workloads import WORKLOADS

    factory = WORKLOADS.get(args.name)
    if factory is None:
        print(f"unknown workload {args.name!r}; available: "
              f"{', '.join(WORKLOADS)}", file=sys.stderr)
        return 2
    trace = execute(factory(scale=args.scale), seed=args.seed)
    if args.fast_path:
        trace, stats = fast_path_filter(trace)
        print(f"fast path removed {stats.removed} of {stats.original_events} "
              f"events ({stats.hit_rate:.0%})")
    vindicator = Vindicator(vindicate_all=args.vindicate_all,
                            prefilter=args.prefilter,
                            sanitize=args.sanitize,
                            jobs=args.jobs,
                            variant=_variant_spec(args))
    return _run_and_print(vindicator, trace, args.witness,
                          as_json=args.json)


def _profile_trace(args: argparse.Namespace):
    """Load (or execute) the profile target inside a ``profile.load`` span.

    The target is a trace file when a file of that name exists,
    otherwise a workload name. Returns ``None`` for an unknown target.
    """
    from repro.runtime import execute, fast_path_filter
    from repro.runtime.workloads import WORKLOADS

    target = args.target
    is_file = os.path.exists(target)
    if not is_file and target not in WORKLOADS:
        print(f"unknown trace file or workload {target!r}; available "
              f"workloads: {', '.join(WORKLOADS)}", file=sys.stderr)
        return None
    with obs.span("profile.load") as load_span:
        if is_file:
            trace = load_trace(target)
        else:
            trace = execute(WORKLOADS[target](scale=args.scale),
                            seed=args.seed)
        if args.fast_path:
            trace, _ = fast_path_filter(trace)
        load_span.annotate("events", len(trace))
    return trace


def _print_profile_summary(session: obs.ObsSession) -> None:
    reg = session.registry
    counters = reg.counters()
    if counters:
        width = max(len(name) for name in counters)
        print("counters:")
        for name in sorted(counters):
            print(f"  {name:<{width}}  {counters[name]}")
    gauges = reg.gauges()
    if gauges:
        width = max(len(name) for name in gauges)
        print("gauges:")
        for name in sorted(gauges):
            print(f"  {name:<{width}}  {gauges[name]}")


def _cmd_profile(args: argparse.Namespace) -> int:
    meta = {"command": f"profile {args.target}"}
    spec = _variant_spec(args)
    with obs.session(metrics_path=args.metrics, meta=meta,
                     deep_memory=args.deep_mem) as session:
        with obs.span(f"profile.{args.target}") as root:
            # Stamp the resolved backend (and variant) on the root span
            # so A/B kernel profiles are self-describing.
            root.tag("kernels.backend", spec.apply())
            root.tag("variant", spec.variant)
            trace = _profile_trace(args)
            if trace is None:
                return 2
            meta["provenance"] = dict(trace.provenance)
            vindicator = Vindicator(vindicate_all=args.vindicate_all,
                                    prefilter=args.prefilter,
                                    sanitize=args.sanitize,
                                    jobs=args.jobs,
                                    variant=spec)
            try:
                vindicator.run(trace)
            except SanitizerError as exc:
                print(exc, file=sys.stderr)
                return 1
        print(session.render_spans(min_ms=args.min_ms))
        _print_profile_summary(session)
        if args.metrics:
            print(f"metrics written to {args.metrics}")
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    import signal

    from repro.serve.server import ServeDaemon

    try:
        daemon = ServeDaemon(
            unix_socket=args.socket, port=args.port, host=args.host,
            jobs=args.jobs, checkpoint_dir=args.checkpoint_dir,
            watch_dir=args.watch, metrics_port=args.metrics_port)
    except ValueError as exc:
        print(f"serve: {exc}", file=sys.stderr)
        return 2
    daemon.start()

    def _stop(signum: int, frame: object) -> None:
        daemon._stop.set()

    signal.signal(signal.SIGTERM, _stop)
    signal.signal(signal.SIGINT, _stop)

    if args.socket:
        print(f"listening on unix socket {args.socket}", file=sys.stderr)
    if daemon.tcp_address is not None:
        host, port = daemon.tcp_address
        print(f"listening on tcp {host}:{port}", file=sys.stderr)
    if daemon.metrics_address is not None:
        host, port = daemon.metrics_address
        print(f"metrics on http://{host}:{port}/metrics", file=sys.stderr)
    if args.watch:
        print(f"watching {args.watch} for *.trace files", file=sys.stderr)
    print(f"{args.jobs} shard(s); checkpoints in {daemon.checkpoint_dir}",
          file=sys.stderr)

    daemon.serve_forever()
    daemon.shutdown()
    for doc in daemon.final_checkpoints:
        print(f"checkpointed session {doc['session']!r} "
              f"({doc['events']} events) to {doc['path']}", file=sys.stderr)
    return 0


def build_parser() -> argparse.ArgumentParser:
    """The CLI argument parser (exposed for testing)."""
    parser = argparse.ArgumentParser(
        prog="vindicator",
        description="Sound predictive data race detection (Vindicator, "
                    "PLDI 2018 reproduction)")
    parser.add_argument("--metrics", metavar="PATH", default=None,
                        help="enable observability and export metrics to "
                             "PATH (.jsonl streams span records, .json "
                             "writes a snapshot, .prom/.txt Prometheus "
                             "text)")
    parser.add_argument("--kernels", choices=("auto", "python", "compiled"),
                        default=None,
                        help="clock-kernel backend: 'compiled' requires the "
                             "repro.core._kernels extension (fails loudly if "
                             "absent), 'python' forces the pure-Python "
                             "reference kernels, 'auto' prefers compiled "
                             "(default: $VINDICATOR_KERNELS or auto); "
                             "verdicts are bit-identical either way")
    sub = parser.add_subparsers(dest="command", required=True)

    def add_static_flags(cmd: argparse.ArgumentParser) -> None:
        cmd.add_argument("--prefilter", action="store_true",
                         help="skip race checks on variables the lockset "
                              "pre-analysis proves race-free (same verdicts, "
                              "less work)")
        cmd.add_argument("--sanitize", action="store_true",
                         help="cross-check detector races against the lockset "
                              "pre-analysis; exit 1 on violation")

    def add_jobs_flag(cmd: argparse.ArgumentParser) -> None:
        cmd.add_argument("--jobs", type=int, default=1, metavar="N",
                         help="run analysis and vindication across N worker "
                              "processes; reports stay bit-identical to "
                              "--jobs 1 (default: 1, fully serial)")

    def add_variant_flags(cmd: argparse.ArgumentParser) -> None:
        # The flags compose instead of conflicting: the batch detectors
        # are the epoch detectors plus the vectorized planner, so
        # --batch subsumes --fast-vc (repro.analysis.variants.resolve),
        # and either composes with --kernels compiled for the full
        # fused-kernel fast path.
        cmd.add_argument("--fast-vc", action="store_true", dest="fast_vc",
                         help="run the SmartTrack-style epoch/dense-kernel "
                              "WCP and DC detectors (same verdicts and "
                              "constraint graph, >=2x faster)")
        cmd.add_argument("--batch", action="store_true",
                         help="run the batched interpreter over the packed "
                              "columnar encoding (same verdicts and "
                              "constraint graph, >=5x faster than the "
                              "reference on workload-scale traces; "
                              "requires numpy; subsumes --fast-vc and "
                              "composes with --kernels compiled)")
        # Accept --kernels after the subcommand too, so the composed
        # invocation reads naturally (`analyze t.txt --batch --kernels
        # compiled`).  SUPPRESS keeps the subparser from clobbering a
        # root-level --kernels with its own default when the flag is
        # only given up front.
        cmd.add_argument("--kernels", choices=("auto", "python", "compiled"),
                         default=argparse.SUPPRESS,
                         help="clock-kernel backend for this run (same as "
                              "the global --kernels; composes with --batch "
                              "and --fast-vc)")

    analyze = sub.add_parser("analyze", help="analyze a text-format trace file")
    analyze.add_argument("trace", help="path to the trace file")
    analyze.add_argument("--vindicate-all", action="store_true",
                         help="vindicate every DC-race, not only DC-only ones")
    analyze.add_argument("--policy", choices=("latest", "earliest", "random"),
                         default="latest", help="greedy construction policy")
    analyze.add_argument("--witness", action="store_true",
                         help="print witness traces for confirmed races")
    analyze.add_argument("--json", action="store_true",
                         help="emit the vindicator.analyze/1 JSON document "
                              "instead of the human-readable report")
    add_static_flags(analyze)
    add_jobs_flag(analyze)
    add_variant_flags(analyze)
    analyze.set_defaults(func=_cmd_analyze)

    lint = sub.add_parser(
        "lint", help="lint a text-format trace file (collects all findings; "
                     "exit 0 clean/warnings, 1 on error-severity findings, "
                     "2 on usage failure)")
    lint.add_argument("trace", help="path to the trace file")
    lint.add_argument("--json", action="store_true",
                      help="emit the vindicator.lint/1 JSON document "
                           "instead of the human-readable report")
    lint.set_defaults(func=_cmd_lint)

    scan = sub.add_parser(
        "scan", help="source-level static race analysis over Python source "
                     "(file or package directory); exit 0 clean/warnings, "
                     "1 on error-severity findings, 2 on usage failure")
    scan.add_argument("path", help="Python file or package directory")
    scan.add_argument("--json", action="store_true",
                      help="emit the vindicator.scan/1 JSON document "
                           "(findings + instrumentation plan) instead of "
                           "the human-readable report")
    scan.set_defaults(func=_cmd_scan)

    litmus = sub.add_parser("litmus", help="run the paper's litmus executions")
    litmus.add_argument("name", nargs="?", help="litmus trace name "
                        f"({', '.join(LITMUS)})")
    litmus.add_argument("--witness", action="store_true")
    add_static_flags(litmus)
    add_jobs_flag(litmus)
    add_variant_flags(litmus)
    litmus.set_defaults(func=_cmd_litmus)

    workload = sub.add_parser("workload", help="run a DaCapo-analog workload")
    workload.add_argument("name", help="workload name (e.g. xalan)")
    workload.add_argument("--seed", type=int, default=0)
    workload.add_argument("--scale", type=float, default=1.0)
    workload.add_argument("--fast-path", action="store_true",
                          help="apply the redundant-access fast path")
    workload.add_argument("--vindicate-all", action="store_true")
    workload.add_argument("--witness", action="store_true")
    workload.add_argument("--json", action="store_true",
                          help="emit the vindicator.analyze/1 JSON document "
                               "instead of the human-readable report")
    add_static_flags(workload)
    add_jobs_flag(workload)
    add_variant_flags(workload)
    workload.set_defaults(func=_cmd_workload)

    profile = sub.add_parser(
        "profile", help="run the pipeline with observability on and print "
                        "the per-phase span tree + metrics summary")
    profile.add_argument("target",
                         help="trace file path, or workload name")
    profile.add_argument("--seed", type=int, default=0,
                         help="scheduler seed (workload targets)")
    profile.add_argument("--scale", type=float, default=1.0,
                         help="workload scale factor (workload targets)")
    profile.add_argument("--fast-path", action="store_true",
                         help="apply the redundant-access fast path")
    profile.add_argument("--vindicate-all", action="store_true")
    profile.add_argument("--deep-mem", action="store_true",
                         help="also sample gc object counts at phase "
                              "boundaries (slower)")
    profile.add_argument("--min-ms", type=float, default=0.0,
                         help="hide spans shorter than this many ms")
    # Convenience: accept --metrics after the sub-command too. SUPPRESS
    # keeps the global flag's value when this one is absent.
    profile.add_argument("--metrics", metavar="PATH",
                         default=argparse.SUPPRESS,
                         help="also export metrics to PATH (same formats "
                              "as the global --metrics flag)")
    add_static_flags(profile)
    add_jobs_flag(profile)
    add_variant_flags(profile)
    profile.set_defaults(func=_cmd_profile)

    serve = sub.add_parser(
        "serve", help="run the streaming analysis daemon: framed NDJSON "
                      "sessions over unix/TCP sockets, a *.trace drop "
                      "directory, live /metrics, graceful drain with "
                      "final checkpoints (see docs/SERVING.md)")
    serve.add_argument("--socket", metavar="PATH", default=None,
                       help="unix-domain socket to listen on")
    serve.add_argument("--port", type=int, default=None, metavar="N",
                       help="TCP port to listen on (0 = ephemeral; the "
                            "chosen port is printed at startup)")
    serve.add_argument("--host", default="127.0.0.1",
                       help="bind address for --port and --metrics-port "
                            "(default: 127.0.0.1)")
    serve.add_argument("--jobs", type=int, default=1, metavar="N",
                       help="shard sessions across N worker processes "
                            "(default: 1, in-process)")
    serve.add_argument("--watch", metavar="DIR", default=None,
                       help="also poll DIR for dropped *.trace files "
                            "(results land next to them as "
                            "*.result.json)")
    serve.add_argument("--checkpoint-dir", metavar="DIR", default=None,
                       help="where drain/default checkpoints are written "
                            "(default: current directory)")
    serve.add_argument("--metrics-port", type=int, default=None,
                       metavar="N",
                       help="serve Prometheus /metrics and /healthz on "
                            "this HTTP port (0 = ephemeral)")
    serve.set_defaults(func=_cmd_serve)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point."""
    args = build_parser().parse_args(argv)
    if args.kernels is not None:
        try:
            kernels.set_backend(args.kernels)
        except RuntimeError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
    if args.func is _cmd_profile:
        # profile manages its own observability session (always enabled,
        # --metrics only picks the export path).
        return args.func(args)
    if args.metrics:
        with obs.session(metrics_path=args.metrics,
                         meta={"command": args.command}):
            status = args.func(args)
        return status
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())

"""Command-line interface: ``vindicator`` / ``python -m repro``.

Sub-commands:

* ``analyze <trace-file>`` — run HB, WCP, and DC analyses plus
  vindication on a text-format trace (see :mod:`repro.traces.io`) and
  print the race report;
* ``lint <trace-file>`` — run the collecting trace linter
  (:mod:`repro.static.lint`) and print every finding with its stable
  rule code; accepts traces too malformed to analyze;
* ``litmus [name]`` — run the paper's litmus executions (all, or one by
  name) and show what each analysis finds;
* ``workload <name>`` — execute a DaCapo-analog workload and analyze its
  trace.

``analyze``, ``litmus``, and ``workload`` accept ``--prefilter`` (skip
vector-clock race checks on variables the lockset pre-analysis proves
race-free) and ``--sanitize`` (cross-check every detector's races
against that pre-analysis; exit 1 on a violation).

Examples::

    vindicator litmus figure2
    vindicator analyze mytrace.txt --vindicate-all --witness
    vindicator analyze mytrace.txt --prefilter --sanitize
    vindicator lint mytrace.txt
    vindicator workload xalan --seed 3 --scale 0.5
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.analysis.races import RaceClass
from repro.core.exceptions import SanitizerError
from repro.static.lint import Severity, lint_events
from repro.stats.distances import static_distance_ranges
from repro.traces.render import render_witness
from repro.traces.io import load_events, load_trace
from repro.traces.litmus import ALL as LITMUS
from repro.vindicate.vindicator import Vindicator, VindicatorReport


def _print_report(report: VindicatorReport, show_witness: bool) -> None:
    print(f"trace: {len(report.trace)} events, "
          f"{len(report.trace.threads)} threads")
    if report.lockset is not None:
        print(f"  lockset pre-analysis: {report.lockset.summary()}")
    for analysis in (report.hb, report.wcp, report.dc):
        print(f"  {analysis}")
        skipped = analysis.counters.get("lockset_skipped")
        if skipped is not None:
            checked = analysis.counters.get("lockset_checked", 0)
            total = skipped + checked
            rate = skipped / total if total else 0.0
            print(f"    pre-filter: skipped {skipped} of {total} "
                  f"access checks ({rate:.0%})")
    by_class = report.dc.by_class()
    for race_class in RaceClass:
        races = by_class.get(race_class, [])
        if races:
            print(f"  {race_class}: {len(races)} dynamic")
    if report.vindications:
        print("vindication:")
        for v in report.vindications:
            print(f"  {v.race}")
            print(f"    -> {v.verdict} (LS constraints: {v.ls_constraints}, "
                  f"attempts: {v.attempts}, {v.elapsed_seconds * 1e3:.1f} ms)")
            if show_witness and v.witness is not None:
                print("    witness (correctly reordered trace):")
                for line in render_witness(v.witness, v.race.first,
                                           v.race.second).splitlines():
                    print(f"      {line}")
    ranges = static_distance_ranges(
        [r for r in report.dc.races if r.race_class is RaceClass.DC_ONLY])
    if ranges:
        print("DC-only static races (event distances):")
        for key, rng in ranges.items():
            locs = " <-> ".join(sorted(key))
            print(f"  {locs}: {rng}")


def _run_and_print(vindicator: Vindicator, trace, show_witness: bool) -> int:
    try:
        report = vindicator.run(trace)
    except SanitizerError as exc:
        print(exc, file=sys.stderr)
        return 1
    _print_report(report, show_witness=show_witness)
    return 0


def _cmd_analyze(args: argparse.Namespace) -> int:
    trace = load_trace(args.trace)
    vindicator = Vindicator(vindicate_all=args.vindicate_all,
                            policy=args.policy,
                            prefilter=args.prefilter,
                            sanitize=args.sanitize)
    return _run_and_print(vindicator, trace, args.witness)


def _cmd_lint(args: argparse.Namespace) -> int:
    events, line_numbers = load_events(args.trace)
    diagnostics = lint_events(events)
    for diag in diagnostics:
        line = (line_numbers[diag.event_index]
                if 0 <= diag.event_index < len(line_numbers) else None)
        print(f"{args.trace}:{diag.format(line)}")
    by_severity = {severity: 0 for severity in Severity}
    for diag in diagnostics:
        by_severity[diag.severity] += 1
    print(f"{len(events)} events: "
          f"{by_severity[Severity.ERROR]} error(s), "
          f"{by_severity[Severity.WARNING]} warning(s), "
          f"{by_severity[Severity.NOTE]} note(s)")
    return 1 if by_severity[Severity.ERROR] else 0


def _cmd_litmus(args: argparse.Namespace) -> int:
    names = [args.name] if args.name else list(LITMUS)
    for name in names:
        factory = LITMUS.get(name)
        if factory is None:
            print(f"unknown litmus trace {name!r}; available: "
                  f"{', '.join(LITMUS)}", file=sys.stderr)
            return 2
        print(f"=== {name} ===")
        vindicator = Vindicator(vindicate_all=True,
                                transitive_force=not name.startswith("figure4"),
                                prefilter=args.prefilter,
                                sanitize=args.sanitize)
        status = _run_and_print(vindicator, factory(), args.witness)
        if status:
            return status
        print()
    return 0


def _cmd_workload(args: argparse.Namespace) -> int:
    from repro.runtime import execute, fast_path_filter
    from repro.runtime.workloads import WORKLOADS

    factory = WORKLOADS.get(args.name)
    if factory is None:
        print(f"unknown workload {args.name!r}; available: "
              f"{', '.join(WORKLOADS)}", file=sys.stderr)
        return 2
    trace = execute(factory(scale=args.scale), seed=args.seed)
    if args.fast_path:
        trace, stats = fast_path_filter(trace)
        print(f"fast path removed {stats.removed} of {stats.original_events} "
              f"events ({stats.hit_rate:.0%})")
    vindicator = Vindicator(vindicate_all=args.vindicate_all,
                            prefilter=args.prefilter,
                            sanitize=args.sanitize)
    return _run_and_print(vindicator, trace, args.witness)


def build_parser() -> argparse.ArgumentParser:
    """The CLI argument parser (exposed for testing)."""
    parser = argparse.ArgumentParser(
        prog="vindicator",
        description="Sound predictive data race detection (Vindicator, "
                    "PLDI 2018 reproduction)")
    sub = parser.add_subparsers(dest="command", required=True)

    def add_static_flags(cmd: argparse.ArgumentParser) -> None:
        cmd.add_argument("--prefilter", action="store_true",
                         help="skip race checks on variables the lockset "
                              "pre-analysis proves race-free (same verdicts, "
                              "less work)")
        cmd.add_argument("--sanitize", action="store_true",
                         help="cross-check detector races against the lockset "
                              "pre-analysis; exit 1 on violation")

    analyze = sub.add_parser("analyze", help="analyze a text-format trace file")
    analyze.add_argument("trace", help="path to the trace file")
    analyze.add_argument("--vindicate-all", action="store_true",
                         help="vindicate every DC-race, not only DC-only ones")
    analyze.add_argument("--policy", choices=("latest", "earliest", "random"),
                         default="latest", help="greedy construction policy")
    analyze.add_argument("--witness", action="store_true",
                         help="print witness traces for confirmed races")
    add_static_flags(analyze)
    analyze.set_defaults(func=_cmd_analyze)

    lint = sub.add_parser(
        "lint", help="lint a text-format trace file (collects all findings; "
                     "exit 1 if any error-severity rule fires)")
    lint.add_argument("trace", help="path to the trace file")
    lint.set_defaults(func=_cmd_lint)

    litmus = sub.add_parser("litmus", help="run the paper's litmus executions")
    litmus.add_argument("name", nargs="?", help="litmus trace name "
                        f"({', '.join(LITMUS)})")
    litmus.add_argument("--witness", action="store_true")
    add_static_flags(litmus)
    litmus.set_defaults(func=_cmd_litmus)

    workload = sub.add_parser("workload", help="run a DaCapo-analog workload")
    workload.add_argument("name", help="workload name (e.g. xalan)")
    workload.add_argument("--seed", type=int, default=0)
    workload.add_argument("--scale", type=float, default=1.0)
    workload.add_argument("--fast-path", action="store_true",
                          help="apply the redundant-access fast path")
    workload.add_argument("--vindicate-all", action="store_true")
    workload.add_argument("--witness", action="store_true")
    add_static_flags(workload)
    workload.set_defaults(func=_cmd_workload)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point."""
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())

"""VindicateRace: constraint discovery, witness construction, checking."""

from repro.vindicate.add_constraints import ConstraintResult, add_constraints
from repro.vindicate.construct import (
    POLICIES,
    ConstructionStats,
    construct_reordered_trace,
)
from repro.vindicate.verify import check_correct_reordering, check_witness
from repro.vindicate.oracle import OracleBudgetExceededError, PredictabilityOracle
from repro.vindicate.vindicator import (
    Verdict,
    Vindication,
    Vindicator,
    VindicatorReport,
    vindicate_race,
)

__all__ = [
    "POLICIES",
    "ConstraintResult",
    "ConstructionStats",
    "OracleBudgetExceededError",
    "PredictabilityOracle",
    "Verdict",
    "Vindication",
    "Vindicator",
    "VindicatorReport",
    "add_constraints",
    "check_correct_reordering",
    "check_witness",
    "construct_reordered_trace",
    "vindicate_race",
]

"""VINDICATERACE and the full Vindicator pipeline (Sections 3, 5, 6.1).

:func:`vindicate_race` is Algorithm 1: check one DC-race against the
constraint graph, returning a verdict —

* ``RACE`` with a checked witness (a correctly reordered trace executing
  the pair consecutively),
* ``NO_RACE`` with the refuting constraint cycle, or
* ``UNKNOWN`` when the greedy constructor fails (inconclusive).

:class:`Vindicator` is the end-to-end system: it runs HB, WCP, and DC
analyses over the same trace in lockstep (as the paper's implementation
does, to classify each DC-race as an HB-race, WCP-only race, or DC-only
race), then vindicates every dynamic DC-only race. All edges VindicateRace
adds to the shared constraint graph are removed afterwards so each race
is checked independently.
"""

from __future__ import annotations

import enum
import time
from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional

from repro import obs
from repro.core import kernels
from repro.core.events import Event
from repro.core.exceptions import SanitizerError
from repro.core.trace import Trace
from repro.graph.constraint_graph import ConstraintGraph
from repro.graph.reachability import ReachabilityIndex
from repro.analysis.dc import DCDetector
from repro.analysis.hb import HBDetector
from repro.analysis.races import DynamicRace, RaceClass, RaceReport, classify
from repro.analysis.variants import (VARIANTS as VARIANTS_TUPLE, VariantSpec,
                                     coerce, make_analysis_detectors)
from repro.analysis.wcp import WCPDetector
from repro.obs.schema import ANALYZE_SCHEMA_ID
from repro.static.lockset import LocksetResult, analyze_locksets, cross_check
from repro.vindicate.add_constraints import add_constraints
from repro.vindicate.construct import construct_reordered_trace
from repro.vindicate.verify import check_witness


class Verdict(enum.Enum):
    """Outcome of VINDICATERACE for one DC-race."""

    RACE = "predictable race"
    NO_RACE = "no predictable race"
    UNKNOWN = "don't know"

    def __str__(self) -> str:
        return self.value


@dataclass
class Vindication:
    """The result of vindicating one DC-race.

    Attributes:
        race: The DC-race that was checked.
        verdict: RACE / NO_RACE / UNKNOWN.
        witness: The correctly reordered witness trace (verdict RACE).
        cycle: The refuting constraint cycle's event ids (verdict NO_RACE).
        consecutive_edges: Consecutive-event constraints added.
        ls_constraints: Lock-semantics constraints added (Table 3 metric).
        attempts: ATTEMPTTOCONSTRUCTTRACE calls (>1 ⇒ missing-release retry).
        elapsed_seconds: Wall-clock time of this vindication.
    """

    race: DynamicRace
    verdict: Verdict
    witness: Optional[List[Event]] = None
    cycle: Optional[List[int]] = None
    consecutive_edges: int = 0
    ls_constraints: int = 0
    attempts: int = 0
    elapsed_seconds: float = 0.0

    def __str__(self) -> str:
        return f"{self.race} -> {self.verdict}"


def vindicate_race(
    graph: ConstraintGraph,
    trace: Trace,
    race: DynamicRace,
    policy: str = "latest",
    seed: int = 0,
    check: bool = True,
    use_window: bool = False,
    index: Optional[ReachabilityIndex] = None,
) -> Vindication:
    """Run VINDICATERACE (Algorithm 1) on one DC-race.

    The graph is temporarily extended with the race's constraints and
    restored before returning, so a single graph serves every race.

    Args:
        graph: The DC constraint graph for ``trace``.
        trace: The observed trace.
        race: The DC-race to vindicate.
        policy: Greedy choice policy for the constructor (``"latest"`` is
            the paper's; ``"earliest"``/``"random"`` exist for ablation).
        seed: Random seed for the ``"random"`` policy.
        check: Validate any witness against Definition 2.1 before
            reporting RACE (the paper's sanity check, on by default).
        use_window: Restrict AddConstraints's searches to the event
            window around the race, expanding on the fly (Section 6.1's
            second optimisation).
        index: Shared reachability engine over ``graph``; created fresh
            when not supplied. Sharing one across races lets the caller
            accumulate its cache counters.
    """
    e1, e2 = race.first, race.second
    if index is None:
        index = ReachabilityIndex(graph)
    start = time.perf_counter()
    with obs.span("vindicate.race") as span:
        # Bracket this race's tagged-edge churn: after the edges are
        # untagged the graph is back to its pre-race edge set, so the
        # pre-race closures are reinstalled instead of being re-derived
        # (the checkpoint merge keeps churn-independent closures too).
        cache_checkpoint = index.checkpoint()
        with obs.span("vindicate.add_constraints") as sp:
            constraints = add_constraints(graph, trace, e1, e2,
                                          use_window=use_window, index=index)
            sp.annotate("edges", len(constraints.added_edges))
            sp.annotate("rounds", constraints.rounds)
        try:
            if constraints.refuted:
                vindication = Vindication(
                    race=race,
                    verdict=Verdict.NO_RACE,
                    cycle=constraints.cycle,
                    consecutive_edges=constraints.consecutive_edges,
                    ls_constraints=constraints.ls_edges,
                    elapsed_seconds=time.perf_counter() - start,
                )
            else:
                with obs.span("vindicate.construct") as sp:
                    witness, stats = construct_reordered_trace(
                        graph, trace, e1, e2, policy=policy, seed=seed,
                        index=index)
                    sp.annotate("attempts", stats.attempts)
                    sp.annotate("placed", stats.placed_events)
                if witness is None:
                    verdict = Verdict.UNKNOWN
                else:
                    verdict = Verdict.RACE
                    if check:
                        with obs.span("vindicate.check_witness"):
                            check_witness(trace, witness, e1, e2)
                vindication = Vindication(
                    race=race,
                    verdict=verdict,
                    witness=witness,
                    consecutive_edges=constraints.consecutive_edges,
                    ls_constraints=constraints.ls_edges,
                    attempts=stats.attempts,
                    elapsed_seconds=time.perf_counter() - start,
                )
        finally:
            for src, dst in reversed(constraints.added_edges):
                graph.remove_edge(src, dst)
            index.restore(cache_checkpoint)
        span.annotate("verdict_" + vindication.verdict.name.lower(), 1)
    reg = obs.metrics()
    if reg.enabled:
        reg.add("vindicate.races_checked", 1)
        reg.add(f"vindicate.verdict.{vindication.verdict.name.lower()}", 1)
        reg.add("vindicate.constraints.consecutive",
                vindication.consecutive_edges)
        reg.add("vindicate.constraints.ls", vindication.ls_constraints)
        reg.add("vindicate.rounds", constraints.rounds)
        reg.add("vindicate.cycle_checks", constraints.cycle_checks)
        reg.add("vindicate.construct_attempts", vindication.attempts)
        if vindication.attempts > 1:
            reg.add("vindicate.construct_retries", vindication.attempts - 1)
        reg.histogram("vindicate.seconds").observe(vindication.elapsed_seconds)
    return vindication


@dataclass
class VindicatorReport:
    """End-to-end results of the Vindicator pipeline on one trace.

    The per-analysis reports correspond to Table 1's columns; the
    classified DC races and their vindications drive Tables 2–3 and
    Figure 6.
    """

    trace: Trace
    hb: RaceReport
    wcp: RaceReport
    dc: RaceReport
    vindications: List[Vindication] = field(default_factory=list)
    analysis_seconds: float = 0.0
    vindication_seconds: float = 0.0
    #: Lockset pre-analysis verdicts (set when the pipeline ran with
    #: ``prefilter`` or ``sanitize``; None otherwise).
    lockset: Optional[LocksetResult] = None
    #: Where the analyzed trace came from (generator/scheduler seed and
    #: config) — copied from :attr:`repro.core.trace.Trace.provenance`
    #: so a measured run is reproducible from its own report.
    provenance: Dict[str, object] = field(default_factory=dict)
    #: Metrics snapshot captured when the pipeline ran with
    #: observability enabled; None otherwise.
    obs: Optional[Dict[str, object]] = None
    #: Worker-process count the pipeline ran with (1 = serial path).
    #: This is the one intentional document difference between serial
    #: and parallel runs of the same trace.
    jobs: int = 1
    #: Which clock-kernel backend produced this report ("python" or
    #: "compiled"); captured at construction so documents are traceable
    #: to the implementation that computed them (the backends are
    #: bit-identical, so this is provenance, not a verdict input).
    kernels_backend: str = field(default_factory=kernels.active_backend)

    @property
    def dc_only_races(self) -> List[DynamicRace]:
        """Dynamic DC-races that are not WCP-races."""
        return [r for r in self.dc.races if r.race_class is RaceClass.DC_ONLY]

    @property
    def confirmed_races(self) -> List[Vindication]:
        return [v for v in self.vindications if v.verdict is Verdict.RACE]

    def summary(self) -> str:
        """A human-readable multi-line summary."""
        lines = [
            f"trace: {len(self.trace)} events, {len(self.trace.threads)} threads",
            str(self.hb),
            str(self.wcp),
            str(self.dc),
            f"DC-only dynamic races: {len(self.dc_only_races)}",
        ]
        for v in self.vindications:
            lines.append(f"  {v}")
        return "\n".join(lines)

    def to_document(self) -> Dict[str, object]:
        """The report as a ``vindicator.analyze/1`` JSON document.

        The shape is pinned by
        :data:`repro.obs.schema.ANALYZE_SCHEMA` and documented in
        ``docs/OBSERVABILITY.md``; this is the stable machine-readable
        surface that ``vindicator analyze --json`` emits and that
        benchmarks/CI consume instead of scraping human-format stdout.
        """
        lockset_doc: Optional[Dict[str, object]] = None
        if self.lockset is not None:
            lockset_doc = {
                "summary": self.lockset.summary(),
                "verdicts": {verdict.value: count for verdict, count
                             in self.lockset.counts().items()},
            }
        return {
            "schema": ANALYZE_SCHEMA_ID,
            "trace": {
                "events": len(self.trace),
                "threads": list(self.trace.threads),
                "variables": len(self.trace.variables()),
                "provenance": dict(self.provenance),
            },
            "analyses": {
                "hb": _analysis_doc(self.hb),
                "wcp": _analysis_doc(self.wcp),
                "dc": _analysis_doc(self.dc),
            },
            "race_classes": {str(cls): len(races) for cls, races
                             in self.dc.by_class().items()},
            "vindications": [_vindication_doc(v) for v in self.vindications],
            "lockset": lockset_doc,
            "timing": {
                "analysis_seconds": self.analysis_seconds,
                "vindication_seconds": self.vindication_seconds,
            },
            "metrics": self.obs,
            "parallel": {"jobs": self.jobs},
            "kernels": {"backend": self.kernels_backend},
        }


def _event_doc(e: Event) -> Dict[str, object]:
    return {"eid": e.eid, "tid": e.tid, "kind": e.kind.value,
            "target": e.target, "loc": e.loc}


def _race_doc(race: DynamicRace) -> Dict[str, object]:
    return {
        "first": _event_doc(race.first),
        "second": _event_doc(race.second),
        "relation": race.relation,
        "race_class": str(race.race_class) if race.race_class else None,
        "distance": race.event_distance,
    }


def _analysis_doc(report: RaceReport) -> Dict[str, object]:
    return {
        "relation": report.relation,
        "static_races": report.static_count,
        "dynamic_races": report.dynamic_count,
        "races": [_race_doc(r) for r in report.races],
        "counters": dict(report.counters),
    }


def _vindication_doc(v: Vindication) -> Dict[str, object]:
    return {
        "race": _race_doc(v.race),
        "verdict": str(v.verdict),
        "ls_constraints": v.ls_constraints,
        "consecutive_edges": v.consecutive_edges,
        "attempts": v.attempts,
        "elapsed_seconds": v.elapsed_seconds,
        "witness_events": len(v.witness) if v.witness is not None else None,
        "cycle": list(v.cycle) if v.cycle is not None else None,
    }


class Vindicator:
    """The complete Vindicator system.

    Runs HB, WCP, and DC analyses in lockstep over a trace, classifies
    every DC-race, and vindicates the DC-only ones (optionally all).

    Args:
        vindicate_all: Vindicate every DC-race instead of only DC-only
            races (the paper vindicates DC-only races because WCP-races
            are already known true, modulo the deadlock caveat).
        policy: Greedy policy for the witness constructor.
        check_witnesses: Validate witnesses against Definition 2.1.
        prefilter: Run the lockset pre-analysis first and install its
            race-candidate set as every detector's fast-path filter.
            Changes no verdict (the verdicts are sound exclusions);
            skips the race check on provably race-free variables.
        sanitize: Cross-check every detector's races against the
            lockset over-approximation and raise
            :class:`~repro.core.exceptions.SanitizerError` on any race
            over a provably race-free variable.
        jobs: Worker processes. ``1`` (default) runs today's serial
            path untouched; ``N > 1`` runs the detectors concurrently
            and fans vindications out via :mod:`repro.parallel`, with
            reports bit-identical to serial (worker-count metadata and
            reachability cache counters excepted — see
            ``docs/PARALLEL.md``).
        variant: ``"reference"`` (default) runs the dict-backed WCP/DC
            detectors; ``"fast"`` runs the SmartTrack-style epoch/dense
            kernel variants (:mod:`repro.analysis.smarttrack`, the
            ``--fast-vc`` CLI switch) — verdict-identical (races, DC
            constraint graph, counters), substantially faster;
            ``"batch"`` runs the batched interpreter over the packed
            columnar encoding (:mod:`repro.analysis.batch`, the
            ``--batch`` CLI switch) — also verdict-identical, fastest,
            requires numpy. HB always runs the reference detector (it
            is not the bottleneck and its ``racing_at`` drives
            classification).
    """

    # Kept as a class attribute for callers that introspect the valid
    # names; the canonical definition lives in repro.analysis.variants.
    VARIANTS = VARIANTS_TUPLE

    def __init__(self, vindicate_all: bool = False, policy: str = "latest",
                 check_witnesses: bool = True, transitive_force: bool = True,
                 use_window: bool = False, prefilter: bool = False,
                 sanitize: bool = False, jobs: int = 1,
                 variant: "str | VariantSpec" = "reference"):
        self.vindicate_all = vindicate_all
        self.policy = policy
        self.check_witnesses = check_witnesses
        #: Enable AddConstraints's event-window optimisation.
        self.use_window = use_window
        #: See :attr:`repro.analysis.base.Detector.transitive_force`; with
        #: False, dependent DC-races surface and are refuted by
        #: VindicateRace instead of being suppressed by the detector.
        self.transitive_force = transitive_force
        #: Enable the lockset fast-path filter on all three detectors.
        self.prefilter = prefilter
        #: Enable the lockset cross-check on all three race reports.
        self.sanitize = sanitize
        if jobs < 1:
            raise ValueError(f"jobs must be >= 1, got {jobs}")
        #: Worker processes (1 = serial).
        self.jobs = jobs
        spec = coerce(variant)
        #: The resolved variant × kernel-backend selection
        #: (:class:`repro.analysis.variants.VariantSpec`). Accepts a bare
        #: variant string for compatibility; a full spec additionally
        #: pins the kernel backend, installed at :meth:`run` entry and
        #: shipped to pool workers so the whole pipeline agrees.
        self.variant_spec = spec
        #: Detector implementation: "reference", "fast" (epoch/dense),
        #: or "batch" (packed-columnar batched interpreter).
        self.variant = spec.variant

    def run(self, trace: Trace) -> VindicatorReport:
        """Analyze ``trace`` end to end."""
        # Install the spec's kernel backend before any detector binds
        # its fused-kernel context (a no-op for a backend-less spec).
        self.variant_spec.apply()
        with obs.span("pipeline.run") as pipeline_span:
            if self.jobs > 1:
                report = self._run_parallel(trace, pipeline_span)
            else:
                report = self._run(trace, pipeline_span)
        reg = obs.metrics()
        if reg.enabled:
            # Snapshot *after* every phase has published its batch.
            report.obs = reg.snapshot()
        return report

    def _run(self, trace: Trace, pipeline_span: obs.AnySpan) -> VindicatorReport:
        lockset: Optional[LocksetResult] = None
        candidates = None
        if self.prefilter or self.sanitize:
            lockset = analyze_locksets(trace.events)
            if self.prefilter:
                candidates = lockset.race_candidates
        hb, wcp, dc = make_analysis_detectors(self.variant_spec,
                                              prefilter=candidates)
        for detector in (hb, wcp, dc):
            detector.transitive_force = self.transitive_force
        start = time.perf_counter()
        with obs.span("pipeline.analysis") as sp:
            if self.variant == "batch":
                # The batch drivers consume the whole trace per
                # detector; the detectors are independent, so
                # back-to-back full passes produce the same reports as
                # the per-event lockstep below (the parallel path
                # already relies on this).
                hb_report = hb.analyze(trace)
                wcp_report = wcp.analyze(trace)
                dc_report = dc.analyze(trace)
            else:
                for detector in (hb, wcp, dc):
                    detector.begin_trace(trace)
                for event in trace:
                    hb.handle(event)
                    wcp.handle(event)
                    dc.handle(event)
                hb_report = hb.finish()
                wcp_report = wcp.finish()
                dc_report = dc.finish()
            sp.annotate("events", len(trace))
        analysis_seconds = time.perf_counter() - start
        report = self.finalize(trace, hb, wcp, dc,
                               hb_report, wcp_report, dc_report,
                               analysis_seconds=analysis_seconds,
                               lockset=lockset)
        pipeline_span.annotate("events", len(trace))
        return report

    def finalize(self, trace: Trace, hb: HBDetector, wcp: "WCPDetector",
                 dc: "DCDetector", hb_report: RaceReport,
                 wcp_report: RaceReport, dc_report: RaceReport,
                 analysis_seconds: float = 0.0,
                 lockset: Optional[LocksetResult] = None) -> VindicatorReport:
        """Everything after the per-event analysis loop: classify each
        DC-race via the detectors' racing sets, sanitize, assemble the
        report, and vindicate. Shared by :meth:`_run` and the streaming
        service (:mod:`repro.serve`), whose sessions feed the same
        detectors incrementally and must end in a bit-identical report.
        """
        with obs.span("pipeline.classify") as sp:
            classified: List[DynamicRace] = []
            for race in dc_report.races:
                hb_unordered = race.first.eid in hb.racing_at.get(race.second.eid, ())
                wcp_unordered = race.first.eid in wcp.racing_at.get(race.second.eid, ())
                race_class = classify((not hb_unordered, not wcp_unordered))
                classified.append(replace(race, race_class=race_class))
            dc_report.races = classified
            sp.annotate("dc_races", len(classified))

        if self.sanitize:
            assert lockset is not None
            violations: List[str] = []
            for analysis_report in (hb_report, wcp_report, dc_report):
                violations.extend(cross_check(analysis_report.races, lockset))
            if violations:
                raise SanitizerError(violations)

        report = VindicatorReport(
            trace=trace, hb=hb_report, wcp=wcp_report, dc=dc_report,
            analysis_seconds=analysis_seconds, lockset=lockset,
            provenance=dict(trace.provenance))
        start = time.perf_counter()
        index = ReachabilityIndex(dc.graph)
        with obs.span("pipeline.vindicate") as sp:
            for race in classified:
                if not self.vindicate_all and race.race_class is not RaceClass.DC_ONLY:
                    continue
                report.vindications.append(
                    vindicate_race(dc.graph, trace, race, policy=self.policy,
                                   check=self.check_witnesses,
                                   use_window=self.use_window, index=index))
            sp.annotate("races", len(report.vindications))
        report.vindication_seconds = time.perf_counter() - start
        # Surface the reachability engine's cache behaviour on the DC
        # report (Table 4 analog reports these alongside timing).
        for counter, value in index.stats().items():
            if value:
                dc.bump(counter, value)
        reg = obs.metrics()
        if reg.enabled:
            for name, value in index.stats().items():
                reg.add(f"graph.{name}", value)
            for name, value in dc.graph.stats().items():
                reg.gauge(f"graph.{name}").track_max(value)
        return report

    def _run_parallel(self, trace: Trace,
                      pipeline_span: obs.AnySpan) -> VindicatorReport:
        """The ``jobs > 1`` pipeline: same phases as :meth:`_run`, with
        the analysis and vindication phases fanned out over worker
        processes by :mod:`repro.parallel.engine`. Classification,
        lockset work, and report assembly stay in the parent, and every
        merge is order-deterministic, so the report is bit-identical to
        the serial path (worker-count metadata and reachability cache
        counters excepted)."""
        # Imported here so the serial pipeline never touches
        # multiprocessing machinery.
        from repro.parallel import engine

        lockset: Optional[LocksetResult] = None
        candidates = None
        if self.prefilter or self.sanitize:
            lockset = analyze_locksets(trace.events)
            if self.prefilter:
                candidates = lockset.race_candidates
        start = time.perf_counter()
        with obs.span("pipeline.analysis") as sp:
            analysis = engine.run_analysis(
                trace, jobs=self.jobs,
                transitive_force=self.transitive_force,
                prefilter=candidates, variant=self.variant_spec)
            sp.annotate("events", len(trace))
            sp.annotate("jobs", min(3, self.jobs))
        hb_report, wcp_report, dc_report = analysis.hb, analysis.wcp, analysis.dc
        analysis_seconds = time.perf_counter() - start

        with obs.span("pipeline.classify") as sp:
            classified: List[DynamicRace] = []
            for race in dc_report.races:
                hb_unordered = race.first.eid in analysis.hb_racing_at.get(
                    race.second.eid, ())
                wcp_unordered = race.first.eid in analysis.wcp_racing_at.get(
                    race.second.eid, ())
                race_class = classify((not hb_unordered, not wcp_unordered))
                classified.append(replace(race, race_class=race_class))
            dc_report.races = classified
            sp.annotate("dc_races", len(classified))

        if self.sanitize:
            assert lockset is not None
            violations: List[str] = []
            for analysis_report in (hb_report, wcp_report, dc_report):
                violations.extend(cross_check(analysis_report.races, lockset))
            if violations:
                raise SanitizerError(violations)

        report = VindicatorReport(
            trace=trace, hb=hb_report, wcp=wcp_report, dc=dc_report,
            analysis_seconds=analysis_seconds, lockset=lockset,
            provenance=dict(trace.provenance), jobs=self.jobs)
        to_vindicate = [
            (pos, race) for pos, race in enumerate(classified)
            if self.vindicate_all or race.race_class is RaceClass.DC_ONLY]
        start = time.perf_counter()
        with obs.span("pipeline.vindicate") as sp:
            vindications, index_stats = engine.run_vindication(
                trace, analysis, to_vindicate, jobs=self.jobs,
                policy=self.policy, check=self.check_witnesses,
                use_window=self.use_window)
            # The worker round-trip returns value-equal copies of the
            # race objects; swap the parent's classified instances back
            # in so identity matches the serial path.
            for (pos, _), vindication in zip(to_vindicate, vindications):
                vindication.race = classified[pos]
            report.vindications.extend(vindications)
            sp.annotate("races", len(vindications))
            sp.annotate("jobs", self.jobs)
        report.vindication_seconds = time.perf_counter() - start
        for counter, value in index_stats.items():
            if value:
                dc_report.counters[counter] = (
                    dc_report.counters.get(counter, 0) + value)
        reg = obs.metrics()
        if reg.enabled:
            for name, value in index_stats.items():
                reg.add(f"graph.{name}", value)
            for name, value in analysis.graph_stats.items():
                reg.gauge(f"graph.{name}").track_max(value)
        pipeline_span.annotate("events", len(trace))
        return report

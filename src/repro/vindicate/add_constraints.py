"""ADDCONSTRAINTS (Algorithm 1, lines 11–23).

Given the constraint graph ``G`` and a DC-race ``(e1, e2)``, this step
adds the constraints a correctly reordered trace exposing the race must
satisfy:

* **consecutive-event constraints** — every predecessor of ``e1`` (resp.
  ``e2``) must also precede ``e2`` (resp. ``e1``), since the two events
  are to execute back to back;
* **lock-semantics (LS) constraints** — whenever two critical sections
  on one lock become partially ordered through an added edge, and both
  are (partially) needed before the race, the earlier section must
  complete before the later one begins: an edge from ``R(a)`` to
  ``A(r)``.

Constraint discovery iterates to convergence because each added edge may
order further critical sections. If the constraints form a cycle that
reaches the racing events, no correctly reordered trace exists and the
DC-race is refuted.

Per the paper's implementation notes, the search prunes redundant
acquire–release pairs using program order: among candidate acquires of
one thread and lock only the program-order-latest matters, and among
candidate releases only the earliest, since the other pairs' edges are
implied through program order.
"""

from __future__ import annotations

import weakref
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from repro.core.events import Event, EventKind, Target, Tid
from repro.core.trace import Trace
from repro.graph.constraint_graph import ConstraintGraph
from repro.graph.reachability import (ReachabilityIndex, _bit_table,
                                      mask_to_set)


@dataclass
class ConstraintResult:
    """Outcome of ADDCONSTRAINTS.

    Attributes:
        cycle: A constraint cycle reaching the race (None if acyclic);
            a non-None cycle refutes the DC-race.
        added_edges: Every edge added to the graph, in order, so the
            caller can remove them afterwards (the graph is shared across
            vindications of independent races).
        consecutive_edges: Number of consecutive-event constraints added.
        ls_edges: Number of lock-semantics constraints added (Table 3's
            "LS constraints added" metric).
        rounds: Convergence rounds of the do–while loop.
    """

    cycle: Optional[List[int]] = None
    added_edges: List[Tuple[int, int]] = field(default_factory=list)
    consecutive_edges: int = 0
    ls_edges: int = 0
    rounds: int = 0
    #: Cycle searches performed (one closes every convergence round).
    cycle_checks: int = 0

    @property
    def refuted(self) -> bool:
        return self.cycle is not None


def add_constraints(graph: ConstraintGraph, trace: Trace,
                    e1: Event, e2: Event,
                    use_window: bool = False,
                    index: Optional[ReachabilityIndex] = None) -> ConstraintResult:
    """Run ADDCONSTRAINTS for the DC-race ``(e1, e2)``, mutating ``graph``.

    The caller is responsible for removing ``result.added_edges`` once
    vindication of this race finishes.

    Args:
        use_window: Enable the paper's window optimisation (Section 6.1):
            the LS-constraint pair search only traverses events between
            the racing pair, expanding the window on the fly to cover
            every edge it adds. The constraints found are a subset of
            the unwindowed search's; soundness is unaffected (a RACE
            verdict is still gated by the witness checker), but a
            refutation can degrade to *don't know* when the refuting
            cycle involves critical sections outside the window (see
            ``litmus.wcp_deadlock``). On the workload corpora verdicts
            are unchanged (window ablation benchmark).
        index: Reachability engine over ``graph`` to answer the
            ancestor/descendant/reaches queries (one is created when not
            supplied; callers vindicating many races should share one).
    """
    if index is None:
        index = ReachabilityIndex(graph)
    result = ConstraintResult()
    worklist: List[Tuple[int, int]] = []
    window = [min(e1.eid, e2.eid), max(e1.eid, e2.eid)] if use_window else None

    def add(src: int, dst: int) -> bool:
        if src == dst or graph.has_edge(src, dst):
            return False
        graph.add_edge(src, dst)
        result.added_edges.append((src, dst))
        worklist.append((src, dst))
        if window is not None:
            window[0] = min(window[0], src, dst)
            window[1] = max(window[1], src, dst)
        return True

    # --- Consecutive-event constraints (lines 12–13) -------------------
    for src in list(graph.predecessors(e1.eid)):
        if add(src, e2.eid):
            result.consecutive_edges += 1
    for src in list(graph.predecessors(e2.eid)):
        if add(src, e1.eid):
            result.consecutive_edges += 1

    # --- LS constraint fixpoint (lines 14–22) ---------------------------
    sync_masks = _sync_event_masks(trace)
    changed = True
    while changed:
        changed = False
        result.rounds += 1
        bounds = tuple(window) if window is not None else None
        race_region = index.ancestors([e1.eid, e2.eid], include_roots=True,
                                      within=bounds)
        for src, snk in list(worklist):
            for edge in _ls_edges_for(graph, trace, src, snk, race_region,
                                      bounds, index, sync_masks):
                if add(*edge):
                    result.ls_edges += 1
                    changed = True
        result.cycle_checks += 1
        cycle = graph.find_cycle_reaching(
            {e1.eid, e2.eid},
            region=index.ancestors([e1.eid, e2.eid], include_roots=True))
        if cycle is not None:
            result.cycle = cycle
            return result
    return result


#: Per-trace memo for :func:`_sync_event_masks` — traces are immutable
#: and vindicated many times (once per race), so the O(n) scan is paid
#: once. Weak keys keep finished traces collectable.
_sync_masks_cache: "weakref.WeakKeyDictionary[Trace, Tuple[int, int]]" = \
    weakref.WeakKeyDictionary()


def _sync_event_masks(trace: Trace) -> Tuple[int, int]:
    """Bitsets of the trace's acquire and release event ids, so the LS
    pair search can intersect reachability masks against them instead of
    scanning whole ancestor/descendant sets event by event."""
    masks = _sync_masks_cache.get(trace)
    if masks is None:
        bits = _bit_table(len(trace))
        acq = 0
        rel = 0
        for e in trace:
            if e.kind is EventKind.ACQUIRE:
                acq |= bits[e.eid]
            elif e.kind is EventKind.RELEASE:
                rel |= bits[e.eid]
        masks = (acq, rel)
        _sync_masks_cache[trace] = masks
    return masks


def _ls_edges_for(graph: ConstraintGraph, trace: Trace, src: int, snk: int,
                  race_region: Set[int],
                  bounds=None,
                  index: Optional[ReachabilityIndex] = None,
                  sync_masks: Optional[Tuple[int, int]] = None) -> List[Tuple[int, int]]:
    """LS edges implied by the constraint edge ``(src, snk)``.

    An acquire ``a`` with ``a ⇝ src`` and a release ``r`` with
    ``snk ⇝ r`` on the same lock are partially ordered through the edge;
    if ``r``'s critical section is needed before the race
    (``A(r) ⇝ e1 ∨ A(r) ⇝ e2``), the full ordering ``R(a) → A(r)`` is a
    necessary constraint.

    The candidate search runs in mask space: only the (usually tiny)
    intersection of the reachability closures with the trace's
    acquire/release bitsets is ever materialised.
    """
    if index is None:
        index = ReachabilityIndex(graph)
    if sync_masks is None:
        sync_masks = _sync_event_masks(trace)
    acq_events, rel_events = sync_masks
    anc_mask = index.ancestors_mask([src], within=bounds) | (1 << src)
    desc_mask = index.descendants_mask([snk], within=bounds) | (1 << snk)
    events = trace.events

    # Program-order pruning: keep only the latest candidate acquire and
    # the earliest candidate release per (thread, lock).
    latest_acq: Dict[Tuple[Tid, Target], Event] = {}
    for eid in mask_to_set(anc_mask & acq_events):
        e = events[eid]
        key = (e.tid, e.target)
        best = latest_acq.get(key)
        if best is None or e.eid > best.eid:
            latest_acq[key] = e
    earliest_rel: Dict[Tuple[Tid, Target], Event] = {}
    for eid in mask_to_set(desc_mask & rel_events):
        e = events[eid]
        key = (e.tid, e.target)
        best = earliest_rel.get(key)
        if best is None or e.eid < best.eid:
            earliest_rel[key] = e

    edges: List[Tuple[int, int]] = []
    for (_, lock_a), a in latest_acq.items():
        release_of_a = trace.release_of(a)
        if release_of_a is None:
            continue  # critical section never closes; cannot constrain it
        for (_, lock_r), r in earliest_rel.items():
            if lock_a != lock_r:
                continue
            acquire_of_r = trace.acquire_of(r)
            if acquire_of_r.eid == a.eid:
                continue  # same critical section
            if acquire_of_r.eid not in race_region:
                continue  # r's critical section is not needed for the race
            if graph.has_edge(release_of_a.eid, acquire_of_r.eid):
                continue
            if index.reaches(release_of_a.eid, acquire_of_r.eid):
                continue  # already fully ordered
            edges.append((release_of_a.eid, acquire_of_r.eid))
    return edges

"""Brute-force predictable-race oracle.

Exhaustively explores every correct reordering of a (small) trace to
decide, with certainty, which conflicting pairs are predictable races
(Definition 2.2). The search space is exponential, so the oracle is for
testing only — it is the ground truth behind the library's completeness
and soundness property tests:

* DC completeness (Theorem 1): every oracle-predictable pair must be
  DC-unordered, and every trace with a predictable race must have a
  DC-race;
* Vindicator soundness: VindicateRace must never report a race on a
  trace pair the oracle rejects.

The search enumerates reachable *schedules*: states are per-thread
positions; an event is schedulable when its program-order, conflicting-
access, and hard (fork/join/volatile) predecessors are all scheduled and
lock semantics permit it. Two conflicting events form a predictable race
iff some reachable state schedules them back to back (the reordered
trace can simply stop there).
"""

from __future__ import annotations

from typing import Dict, FrozenSet, List, Optional, Set, Tuple

from repro.core.events import Event, EventKind, Target, Tid, conflicts
from repro.core.exceptions import ReproError
from repro.core.trace import Trace


class OracleBudgetExceededError(ReproError):
    """The exhaustive search exceeded its state budget."""


class PredictabilityOracle:
    """Exhaustive predictable-race search over one trace.

    Args:
        trace: The observed trace (keep it small; the state space is the
            product of per-thread lengths).
        max_states: Abort with :class:`OracleBudgetExceededError` when
            more states than this are explored.
    """

    def __init__(self, trace: Trace, max_states: int = 500_000):
        self.trace = trace
        self.max_states = max_states
        self._threads: List[Tid] = trace.threads
        self._thread_index: Dict[Tid, int] = {
            t: i for i, t in enumerate(self._threads)
        }
        self._thread_events: List[List[Event]] = [
            trace.events_of(t) for t in self._threads
        ]
        self._event_pos: Dict[int, Tuple[int, int]] = {}
        for ti, events in enumerate(self._thread_events):
            for pi, e in enumerate(events):
                self._event_pos[e.eid] = (ti, pi)
        self._cross_preds = self._compute_cross_preds()
        self._held_after = self._compute_held_after()
        self._pairs: Optional[Set[Tuple[int, int]]] = None

    # ------------------------------------------------------------------
    # Precomputation
    # ------------------------------------------------------------------
    def _compute_cross_preds(self) -> Dict[int, List[int]]:
        """For each event, the non-PO predecessors that any correct
        reordering must schedule first: earlier conflicting accesses,
        earlier conflicting volatile accesses, the thread's fork, and —
        for a join — every event of the joined thread."""
        preds: Dict[int, List[int]] = {e.eid: [] for e in self.trace}
        by_var: Dict[Target, List[Event]] = {}
        by_vol: Dict[Target, List[Event]] = {}
        fork_of: Dict[Tid, int] = {}
        for e in self.trace:
            if e.is_access:
                for prior in by_var.get(e.target, ()):
                    if conflicts(prior, e):
                        preds[e.eid].append(prior.eid)
                by_var.setdefault(e.target, []).append(e)
            elif e.kind.is_volatile:
                for prior in by_vol.get(e.target, ()):
                    if (prior.kind is EventKind.VOLATILE_WRITE
                            or e.kind is EventKind.VOLATILE_WRITE):
                        if prior.tid != e.tid:
                            preds[e.eid].append(prior.eid)
                by_vol.setdefault(e.target, []).append(e)
            elif e.kind is EventKind.FORK:
                fork_of[e.target] = e.eid
            elif e.kind is EventKind.JOIN:
                preds[e.eid].extend(
                    ce.eid for ce in self.trace.events_of(e.target))
        # A fork edge targets the child's first event; later child events
        # inherit it through program order.
        for tid, fork_eid in fork_of.items():
            events = self.trace.events_of(tid)
            if events:
                preds[events[0].eid].append(fork_eid)
        return preds

    def _compute_held_after(self) -> List[List[FrozenSet[Target]]]:
        """Per thread, per position p: locks held after its first p events."""
        tables: List[List[FrozenSet[Target]]] = []
        for events in self._thread_events:
            held: Set[Target] = set()
            table = [frozenset()]
            for e in events:
                if e.kind is EventKind.ACQUIRE:
                    held.add(e.target)
                elif e.kind is EventKind.RELEASE:
                    held.discard(e.target)
                table.append(frozenset(held))
            tables.append(table)
        return tables

    # ------------------------------------------------------------------
    # Search
    # ------------------------------------------------------------------
    def _scheduled(self, positions: Tuple[int, ...], eid: int) -> bool:
        ti, pi = self._event_pos[eid]
        return positions[ti] > pi

    def _locks_held(self, positions: Tuple[int, ...],
                    exclude_thread: int) -> Set[Target]:
        held: Set[Target] = set()
        for ti, pos in enumerate(positions):
            if ti != exclude_thread:
                held.update(self._held_after[ti][pos])
        return held

    def _enabled(self, positions: Tuple[int, ...], ti: int) -> Optional[Event]:
        """The next event of thread ``ti`` if it is schedulable, else None."""
        events = self._thread_events[ti]
        pos = positions[ti]
        if pos >= len(events):
            return None
        e = events[pos]
        for pred in self._cross_preds[e.eid]:
            if not self._scheduled(positions, pred):
                return None
        if e.kind is EventKind.ACQUIRE:
            if e.target in self._locks_held(positions, exclude_thread=ti):
                return None
        return e

    def predictable_pairs(self) -> Set[Tuple[int, int]]:
        """All pairs ``(eid1, eid2)`` of conflicting events that are
        consecutive in some correct reordering, with ``eid1 <_tr eid2``."""
        if self._pairs is not None:
            return self._pairs
        n_threads = len(self._threads)
        start = tuple(0 for _ in range(n_threads))
        visited: Set[Tuple[int, ...]] = {start}
        stack = [start]
        pairs: Set[Tuple[int, int]] = set()
        while stack:
            if len(visited) > self.max_states:
                raise OracleBudgetExceededError(
                    f"exceeded {self.max_states} states on "
                    f"{len(self.trace)}-event trace")
            positions = stack.pop()
            enabled = [self._enabled(positions, ti) for ti in range(n_threads)]
            # Record conflicting pairs that can run back to back here.
            for e1 in enabled:
                if e1 is None or not e1.is_access:
                    continue
                t1 = self._thread_index[e1.tid]
                after_e1 = tuple(
                    p + 1 if ti == t1 else p
                    for ti, p in enumerate(positions))
                for ti2 in range(n_threads):
                    if ti2 == t1:
                        continue
                    e2 = self._enabled(after_e1, ti2)
                    if e2 is not None and e2.is_access and conflicts(e1, e2):
                        pairs.add((min(e1.eid, e2.eid), max(e1.eid, e2.eid)))
            for ti, e in enumerate(enabled):
                if e is None:
                    continue
                succ = tuple(
                    p + 1 if i == ti else p for i, p in enumerate(positions))
                if succ not in visited:
                    visited.add(succ)
                    stack.append(succ)
        self._pairs = pairs
        return pairs

    def is_predictable(self, first: Event, second: Event) -> bool:
        """Whether the conflicting pair is a predictable race."""
        lo, hi = sorted((first.eid, second.eid))
        return (lo, hi) in self.predictable_pairs()

    def has_predictable_race(self) -> bool:
        """Whether the trace has any predictable race."""
        return bool(self.predictable_pairs())

    # ------------------------------------------------------------------
    # Predictable deadlocks (the WCP soundness caveat)
    # ------------------------------------------------------------------
    def has_predictable_deadlock(self) -> bool:
        """Whether some correct reordering reaches a lock deadlock.

        A state deadlocks when a cycle of threads each waits to acquire a
        lock held by the next (their next events are acquires of locks
        held within the cycle). WCP's soundness theorem (Kini et al.,
        used by the paper in Section 5.3's discussion) promises that a
        WCP-race implies a predictable race *or* a predictable deadlock;
        the property tests check exactly that statement against this
        method.
        """
        n_threads = len(self._threads)
        start = tuple(0 for _ in range(n_threads))
        visited: Set[Tuple[int, ...]] = {start}
        stack = [start]
        while stack:
            if len(visited) > self.max_states:
                raise OracleBudgetExceededError(
                    f"exceeded {self.max_states} states on "
                    f"{len(self.trace)}-event trace")
            positions = stack.pop()
            if self._deadlocked(positions):
                return True
            for ti in range(n_threads):
                if self._enabled(positions, ti) is None:
                    continue
                succ = tuple(
                    p + 1 if i == ti else p for i, p in enumerate(positions))
                if succ not in visited:
                    visited.add(succ)
                    stack.append(succ)
        return False

    def _deadlocked(self, positions: Tuple[int, ...]) -> bool:
        """Is there a cyclic lock wait among threads at this state?

        Only *lock*-blocked threads participate: a thread whose next
        event is an acquire of a currently held lock. (Threads blocked on
        conflicting-access predecessors are waiting on schedulable work,
        not on a resource cycle.)
        """
        holder: Dict[Target, int] = {}
        for ti, pos in enumerate(positions):
            for lock in self._held_after[ti][pos]:
                holder[lock] = ti
        waits: Dict[int, int] = {}
        for ti, pos in enumerate(positions):
            events = self._thread_events[ti]
            if pos >= len(events):
                continue
            e = events[pos]
            if e.kind is EventKind.ACQUIRE and e.target in holder:
                if all(self._scheduled(positions, p)
                       for p in self._cross_preds[e.eid]):
                    waits[ti] = holder[e.target]
        # Cycle detection over the waits-for edges.
        for origin in waits:
            seen = set()
            cur = origin
            while cur in waits and cur not in seen:
                seen.add(cur)
                cur = waits[cur]
                if cur == origin:
                    return True
        return False

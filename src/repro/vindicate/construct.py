"""CONSTRUCTREORDEREDTRACE / ATTEMPTTOCONSTRUCTTRACE (Algorithm 1,
lines 24–44).

Builds a correctly reordered witness trace *backwards*: starting from
``⟨e1, e2⟩``, it repeatedly prepends an event whose graph successors are
already placed and whose placement respects lock semantics. The greedy
choice among legal events is the one **latest in observed-trace order** —
the paper's key insight being that the original critical-section order is
the most likely to succeed (Section 5.3); alternative policies are
provided for the ablation study.

Lock-semantics bookkeeping for backward construction:

* ``open_front[m]`` — the critical section on ``m`` whose release or
  interior events are placed but whose acquire is still missing; while a
  section is open at the front, no other section on ``m`` may place
  events.
* ``cs_below[m]`` — critical sections on ``m`` with at least one placed
  event. Prepending an event of a section whose release is *not* going
  to appear (it is not in the needed set ``R``) is only allowed when no
  other section on ``m`` has placed events; otherwise the section's
  release is *missing* and is returned to the caller, which extends
  ``R`` and retries (lines 28–30, "Retrying construction").
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List, Optional, Set, Tuple, Union

from repro.core.events import Event, Target
from repro.core.exceptions import VindicationError
from repro.core.trace import Trace
from repro.graph.constraint_graph import ConstraintGraph
from repro.graph.reachability import ReachabilityIndex

#: Greedy tie-break policies for ATTEMPTTOCONSTRUCTTRACE.
POLICIES = ("latest", "earliest", "random")


@dataclass
class ConstructionStats:
    """Statistics from one CONSTRUCTREORDEREDTRACE run.

    ``attempts`` is the number of ATTEMPTTOCONSTRUCTTRACE calls (1 means
    no missing-release retry was needed); ``extra_releases`` counts the
    releases pulled into ``R`` by retries.
    """

    attempts: int = 0
    extra_releases: int = 0
    placed_events: int = 0


class _MissingRelease:
    """Sentinel returned by an attempt that needs one more release."""

    def __init__(self, release: Event):
        self.release = release


def construct_reordered_trace(
    graph: ConstraintGraph,
    trace: Trace,
    e1: Event,
    e2: Event,
    policy: str = "latest",
    seed: int = 0,
    index: Optional[ReachabilityIndex] = None,
) -> Tuple[Optional[List[Event]], ConstructionStats]:
    """Try to build a correctly reordered trace with ``e1, e2`` at the
    end, consecutive. Returns ``(witness, stats)`` with ``witness`` None
    on failure (the algorithm is greedy and incomplete, so failure does
    not refute the race). ``index`` optionally supplies a shared
    reachability engine for the ancestor queries."""
    if policy not in POLICIES:
        raise ValueError(f"unknown policy {policy!r}; expected one of {POLICIES}")
    if index is None:
        index = ReachabilityIndex(graph)
    rng = random.Random(seed)
    needed: Set[int] = index.ancestors([e1.eid, e2.eid])
    needed.discard(e1.eid)
    needed.discard(e2.eid)
    stats = ConstructionStats()
    max_retries = len(trace) + 1
    for _ in range(max_retries):
        stats.attempts += 1
        outcome = _attempt(graph, trace, needed, e1, e2, policy, rng)
        if isinstance(outcome, _MissingRelease):
            release = outcome.release
            stats.extra_releases += 1
            needed.add(release.eid)
            needed.update(index.ancestors([release.eid]))
            needed.discard(e1.eid)
            needed.discard(e2.eid)
            continue
        if outcome is not None:
            stats.placed_events = len(outcome)
        return outcome, stats
    raise VindicationError(
        "missing-release retries exceeded the trace length; "
        "this contradicts the algorithm's termination bound")


def _attempt(
    graph: ConstraintGraph,
    trace: Trace,
    needed: Set[int],
    e1: Event,
    e2: Event,
    policy: str,
    rng: random.Random,
) -> Union[List[Event], _MissingRelease, None]:
    """One ATTEMPTTOCONSTRUCTTRACE pass (lines 32–44)."""
    state = _BackwardState(trace)
    reversed_trace: List[Event] = []
    for seed_event in (e2, e1):
        check = state.ls_check(seed_event)
        if check is not _OK:
            return None
        state.place(seed_event)
        reversed_trace.append(seed_event)
    placed: Set[int] = {e1.eid, e2.eid}

    remaining = set(needed)
    # Kahn-style backward topological construction: an event is
    # *graph-legal* when none of its graph successors is still unplaced.
    blocking: Dict[int, int] = {}
    ready: Set[int] = set()
    for eid in remaining:
        count = sum(1 for succ in graph.successor_set(eid) if succ in remaining)
        blocking[eid] = count
        if count == 0:
            ready.add(eid)
    while remaining:
        chosen: Optional[Event] = None
        missing: List[Event] = []
        for eid in _in_policy_order(ready, policy, rng):
            event = trace.events[eid]
            check = state.ls_check(event)
            if check is _OK:
                chosen = event
                break
            if isinstance(check, Event):
                missing.append(check)
        if chosen is not None:
            state.place(chosen)
            reversed_trace.append(chosen)
            placed.add(chosen.eid)
            remaining.discard(chosen.eid)
            ready.discard(chosen.eid)
            for pred in graph.predecessor_set(chosen.eid):
                if pred in remaining:
                    blocking[pred] -= 1
                    if blocking[pred] == 0:
                        ready.add(pred)
            continue
        # No legal event: look for a missing release to pull in (line 38).
        for release in sorted(missing, key=lambda r: -r.eid):
            if release.eid in needed or release.eid in placed:
                continue
            if state.ls_check(release) is _OK:
                return _MissingRelease(release)
        return None  # construction failed (line 40)
    return list(reversed(reversed_trace))


def _in_policy_order(ready: Set[int], policy: str, rng: random.Random) -> List[int]:
    """The ready set in the order the greedy policy prefers."""
    if policy == "latest":
        return sorted(ready, reverse=True)
    if policy == "earliest":
        return sorted(ready)
    shuffled = list(ready)
    rng.shuffle(shuffled)
    return shuffled


_OK = object()


class _BackwardState:
    """Lock-semantics state for backward (prepend-only) construction."""

    def __init__(self, trace: Trace):
        self.trace = trace
        #: lock -> acquire eid of the section open at the front.
        self.open_front: Dict[Target, int] = {}
        #: lock -> acquire eids of sections with placed events.
        self.cs_below: Dict[Target, Set[int]] = {}

    def ls_check(self, event: Event):
        """Can ``event`` be prepended? Returns ``_OK``, ``None`` for an
        LS violation, or the missing release :class:`Event` whose
        presence would make the prepend possible later."""
        trace = self.trace
        for acq_eid in trace.enclosing_acquires[event.eid]:
            lock = trace.events[acq_eid].target
            front = self.open_front.get(lock)
            if front == acq_eid:
                continue  # continuing the section already open at the front
            if front is not None:
                return None  # a different section on this lock is open
            release = trace.release_of(trace.events[acq_eid])
            if release is not None and event.eid == release.eid:
                continue  # prepending the release opens the section cleanly
            # The event starts a section whose release will not appear
            # below it; only fine if no other section on this lock has
            # placed events (they would overlap the unclosed section).
            others = self.cs_below.get(lock, set()) - {acq_eid}
            if others:
                if release is None:
                    return None
                return release  # the missing release (line 38)
        return _OK

    def place(self, event: Event) -> None:
        """Update state after prepending ``event`` (must be LS-checked)."""
        trace = self.trace
        for acq_eid in trace.enclosing_acquires[event.eid]:
            lock = trace.events[acq_eid].target
            self.cs_below.setdefault(lock, set()).add(acq_eid)
            if event.eid == acq_eid:
                # The section's acquire completes it at the front.
                if self.open_front.get(lock) == acq_eid:
                    del self.open_front[lock]
            else:
                self.open_front[lock] = acq_eid

"""Checker for correctly reordered traces (Definition 2.1).

VindicateRace only reports a predictable race after constructing a
witness — a correctly reordered trace in which the racing events are
consecutive. This module implements the paper's optional "sanity check"
(Section 6.1) as a hard guarantee: every witness the library reports has
passed this checker, so soundness does not rest on the constructor's
correctness.

The checker enforces:

* the **PO rule** — program-ordered events keep their order, and a
  thread's included events form a prefix of its original sequence;
* the **CA rule** — conflicting accesses keep their trace order (this
  includes the witness's racing pair itself: Definition 2.2 makes the
  pair consecutive *in trace order*, first access first);
* the **LS rule** — critical sections on one lock never overlap;
* the **hard-edge rules** (model extension for fork/join/volatiles,
  which the paper's formal model omits but its implementation handles):
  a fork precedes all included child events, a join requires the whole
  child, and conflicting volatile accesses keep their order.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Set

from repro.core.events import Event, EventKind, Target, Tid, conflicts
from repro.core.exceptions import MalformedReorderingError
from repro.core.trace import Trace


def check_correct_reordering(original: Trace, reordered: Sequence[Event]) -> None:
    """Raise :class:`MalformedReorderingError` unless ``reordered`` is a
    correct reordering of ``original`` per Definition 2.1 (plus the
    fork/join/volatile extensions)."""
    _check_membership(original, reordered)
    _check_program_order(original, reordered)
    _check_conflicting_accesses(original, reordered)
    _check_lock_semantics(reordered)
    _check_thread_edges(original, reordered)


def check_witness(original: Trace, reordered: Sequence[Event],
                  first: Event, second: Event) -> None:
    """Check that ``reordered`` witnesses a predictable race between
    ``first`` and ``second`` (Definition 2.2): it is a correct reordering
    in which the two conflicting events execute consecutively."""
    check_correct_reordering(original, reordered)
    if not conflicts(first, second):
        raise MalformedReorderingError(
            f"{first} and {second} are not conflicting", rule="EVENTS")
    positions = {e.eid: i for i, e in enumerate(reordered)}
    if first.eid not in positions or second.eid not in positions:
        raise MalformedReorderingError(
            "witness omits one of the racing events", rule="EVENTS")
    if positions[second.eid] != positions[first.eid] + 1:
        raise MalformedReorderingError(
            f"racing events are not consecutive: positions "
            f"{positions[first.eid]} and {positions[second.eid]}",
            rule="EVENTS")


# ----------------------------------------------------------------------
# Individual rules
# ----------------------------------------------------------------------
def _check_membership(original: Trace, reordered: Sequence[Event]) -> None:
    seen: Set[int] = set()
    for e in reordered:
        if e.eid >= len(original) or original[e.eid] != e:
            raise MalformedReorderingError(
                f"{e} is not an event of the original trace", rule="EVENTS")
        if e.eid in seen:
            raise MalformedReorderingError(f"{e} appears twice", rule="EVENTS")
        seen.add(e.eid)


def _check_program_order(original: Trace, reordered: Sequence[Event]) -> None:
    expected: Dict[Tid, List[Event]] = {}
    for e in reordered:
        expected.setdefault(e.tid, []).append(e)
    for tid, events in expected.items():
        originals = original.events_of(tid)
        prefix = originals[:len(events)]
        if events != prefix:
            raise MalformedReorderingError(
                f"thread {tid!r}'s events are not a program-order prefix: "
                f"got {events}, expected prefix {prefix}",
                rule="PO")


def _check_conflicting_accesses(original: Trace,
                                reordered: Sequence[Event]) -> None:
    """Linear-time CA check.

    Runs after the PO check, so same-thread accesses are already known to
    keep their order; the running per-variable maxima below therefore only
    ever trip on genuinely conflicting (cross-thread) pairs. On a
    violation, the quadratic scan reruns to name the exact pair.
    """
    included = {e.eid for e in reordered}
    position = {e.eid: i for i, e in enumerate(reordered)}
    # Order preservation: scan included accesses in original order,
    # tracking the latest witness positions of earlier writes/reads.
    max_wr_pos: Dict[Target, int] = {}
    max_rd_pos: Dict[Target, int] = {}
    # Inclusion: threads with an *excluded* earlier write/read per var.
    missing_wr: Dict[Target, Set] = {}
    missing_rd: Dict[Target, Set] = {}
    for e in original:
        if not e.is_access:
            continue
        var = e.target
        if e.eid not in included:
            table = missing_wr if e.is_write else missing_rd
            table.setdefault(var, set()).add(e.tid)
            continue
        pos = position[e.eid]
        swapped = max_wr_pos.get(var, -1) > pos
        missing = missing_wr.get(var, set()) - {e.tid}
        if e.is_write:
            swapped = swapped or max_rd_pos.get(var, -1) > pos
            missing = missing | (missing_rd.get(var, set()) - {e.tid})
        if swapped or missing:
            _diagnose_ca_violation(original, reordered)
        if e.is_write:
            max_wr_pos[var] = max(max_wr_pos.get(var, -1), pos)
        else:
            max_rd_pos[var] = max(max_rd_pos.get(var, -1), pos)


def _diagnose_ca_violation(original: Trace,
                           reordered: Sequence[Event]) -> None:
    """Quadratic rescan that names the offending pair, then raises."""
    included = {e.eid for e in reordered}
    position = {e.eid: i for i, e in enumerate(reordered)}
    by_var: Dict[Target, List[Event]] = {}
    for e in original:
        if e.is_access and e.eid in included:
            by_var.setdefault(e.target, []).append(e)
    for accesses in by_var.values():
        for i, e1 in enumerate(accesses):
            for e2 in accesses[i + 1:]:
                if conflicts(e1, e2) and position[e1.eid] > position[e2.eid]:
                    raise MalformedReorderingError(
                        f"conflicting accesses {e1} and {e2} were swapped",
                        rule="CA")
    for e2 in reordered:
        if not e2.is_access:
            continue
        for e1 in original:
            if e1.eid >= e2.eid:
                break
            if conflicts(e1, e2) and e1.eid not in included:
                raise MalformedReorderingError(
                    f"{e2} is included but its conflicting predecessor "
                    f"{e1} is not",
                    rule="CA")
    raise MalformedReorderingError(
        "conflicting-access constraint violated", rule="CA")


def _check_lock_semantics(reordered: Sequence[Event]) -> None:
    held: Dict[Target, Tid] = {}
    for e in reordered:
        if e.kind is EventKind.ACQUIRE:
            if e.target in held:
                raise MalformedReorderingError(
                    f"{e} acquires lock held by thread {held[e.target]!r}",
                    rule="LS")
            held[e.target] = e.tid
        elif e.kind is EventKind.RELEASE:
            if held.get(e.target) != e.tid:
                raise MalformedReorderingError(
                    f"{e} releases a lock it does not hold", rule="LS")
            del held[e.target]


def _check_thread_edges(original: Trace, reordered: Sequence[Event]) -> None:
    included = {e.eid for e in reordered}
    position = {e.eid: i for i, e in enumerate(reordered)}
    forks: Dict[Tid, Event] = {}
    for e in original:
        if e.kind is EventKind.FORK:
            forks[e.target] = e
    for e in reordered:
        fork = forks.get(e.tid)
        if fork is not None:
            if fork.eid not in included or position[fork.eid] > position[e.eid]:
                raise MalformedReorderingError(
                    f"{e} executes without (or before) its fork {fork}",
                    rule="PO")
        if e.kind is EventKind.JOIN:
            for child_event in original.events_of(e.target):
                if (child_event.eid not in included
                        or position[child_event.eid] > position[e.eid]):
                    raise MalformedReorderingError(
                        f"{e} joins thread {e.target!r} but child event "
                        f"{child_event} is missing or later",
                        rule="PO")
    # Volatile ordering: conflicting volatile pairs keep trace order.
    by_var: Dict[Target, List[Event]] = {}
    for e in original:
        if e.kind.is_volatile and e.eid in included:
            by_var.setdefault(e.target, []).append(e)
    for accesses in by_var.values():
        for i, e1 in enumerate(accesses):
            for e2 in accesses[i + 1:]:
                both_reads = (e1.kind is EventKind.VOLATILE_READ
                              and e2.kind is EventKind.VOLATILE_READ)
                if not both_reads and position[e1.eid] > position[e2.eid]:
                    raise MalformedReorderingError(
                        f"volatile accesses {e1} and {e2} were swapped",
                        rule="CA")

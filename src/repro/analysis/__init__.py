"""Race detection analyses: HB, WCP, DC (online) and reference engines."""

from repro.analysis.base import AccessHistory, Detector
from repro.analysis.hb import HBDetector
from repro.analysis.fasttrack import FastTrackDetector
from repro.analysis.wcp import WCPDetector
from repro.analysis.dc import DCDetector
from repro.analysis.smarttrack import EpochDCDetector, EpochWCPDetector
from repro.analysis.races import (
    DynamicRace,
    RaceClass,
    RaceReport,
    classify,
    static_races,
)
from repro.analysis.reference import ReferenceAnalysis

__all__ = [
    "AccessHistory",
    "DCDetector",
    "Detector",
    "DynamicRace",
    "EpochDCDetector",
    "EpochWCPDetector",
    "FastTrackDetector",
    "HBDetector",
    "RaceClass",
    "RaceReport",
    "ReferenceAnalysis",
    "WCPDetector",
    "classify",
    "static_races",
]

"""Shared bookkeeping structures for the WCP and DC analyses.

Both analyses implement the same two base rules (Definitions 2.6 and 4.1,
rules (a) and (b)) and differ only in which relation they compose with
(HB for WCP, PO for DC). The machinery for the rules is identical:

* :class:`SourceClocks` backs rule (a): for a given key — a (lock,
  variable) pair, or a volatile variable — it remembers, per source
  thread, the *latest* relevant event together with a clock snapshot
  taken when that event's ordering became final (for rule (a), at the
  release of the critical section containing the access). Later clocks
  of the same thread dominate earlier ones, so keeping only the latest
  entry per thread is lossless.

* :class:`LockQueues` backs rule (b): per lock, the history of critical
  sections by each thread, with a per-observer cursor implementing the
  FIFO queues of Kini et al.'s algorithm. At a release, the observer
  consumes every critical section whose acquire is already ordered
  before it, joining the recorded release clock (rule (b)'s conclusion),
  iterating to a fixpoint because each join can order further acquires.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable, Dict, List, Optional, Tuple, TypeVar

from repro.core import kernels as _k
from repro.core.events import Tid
from repro.core.vectorclock import VectorClock

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for typing only
    from repro.analysis.base import GCFloors

_K = TypeVar("_K")


class SourceClocks:
    """Latest (event, clock snapshot) per source thread for one key."""

    __slots__ = ("_entries",)

    def __init__(self):
        # tid -> (event eid, event thread-local time, clock snapshot)
        self._entries: Dict[Tid, Tuple[int, int, VectorClock]] = {}

    def record(self, tid: Tid, eid: int, local_time: int,
               clock: VectorClock) -> None:
        """Remember ``clock`` as the snapshot for thread ``tid``'s latest
        relevant event. The snapshot must never be mutated afterwards.

        The entry is (re-)inserted at the *end* of the table, so the
        iteration order :meth:`join_into` sees is always most-recent-last
        — a pure function of the record sequence. This matters because
        ``join_into`` mutates the target clock mid-scan (an early join
        can cover a later entry and suppress its edge): if a replaced key
        kept its old dict position, removing an entry (streaming GC) and
        re-recording it later would land it in a different position than
        an uninterrupted run, and the DC edge list would diverge.
        """
        _k.record_latest(self._entries, tid, (eid, local_time, clock))

    def join_into(self, target: VectorClock, skip_tid: Tid) -> List[int]:
        """Join every other thread's snapshot into ``target``; return the
        eids of source events whose ordering is *newly* established (used
        for constraint-graph edges; empty joins are skipped entirely).

        An entry is skipped when the source event is already ordered
        before the target (its own clock component is covered), which is
        the paper's vector-clock-based edge minimisation.
        """
        return _k.source_join_into_sparse(self._entries, target, skip_tid)

    def __bool__(self) -> bool:
        return bool(self._entries)

    def __len__(self) -> int:
        return len(self._entries)

    def gc_retire(self, floors: "GCFloors") -> int:
        """Drop entries at or below the retirement floor (streaming GC).

        A retired entry could never contribute again: every live thread
        ``v ≠ u`` has ``clock_v(u) >= local_time``, so
        :meth:`join_into`'s covered-source skip would fire for it (no
        join, no ``new_sources`` eid) — removal is observationally
        identical, including for the DC edge list.
        """
        drop = [tid for tid, (_eid, local_time, _clock) in self._entries.items()
                if local_time <= floors.floor(tid)]
        for tid in drop:
            del self._entries[tid]
        return len(drop)


@dataclass
class CSRecord:
    """One critical section on one lock, as seen by rule (b)."""

    tid: Tid
    acq_local_time: int
    rel_eid: int = -1
    rel_local_time: int = -1
    rel_clock: Optional[VectorClock] = None

    @property
    def closed(self) -> bool:
        return self.rel_clock is not None


@dataclass
class LockQueues:
    """Rule (b) state for one lock: per-thread critical-section history
    plus per-observer consumption cursors."""

    records: Dict[Tid, List[CSRecord]] = field(default_factory=dict)
    cursors: Dict[Tid, Dict[Tid, int]] = field(default_factory=dict)
    open_record: Optional[CSRecord] = None

    def on_acquire(self, tid: Tid, acq_local_time: int) -> None:
        """Open a new critical section record for ``tid``."""
        record = CSRecord(tid=tid, acq_local_time=acq_local_time)
        self.records.setdefault(tid, []).append(record)
        self.open_record = record

    def on_release(self, rel_eid: int, rel_local_time: int,
                   snapshot: VectorClock) -> None:
        """Close the open critical section with the releasing thread's
        clock snapshot (which must not be mutated afterwards)."""
        record = self.open_record
        assert record is not None, "release without matching acquire"
        record.rel_eid = rel_eid
        record.rel_local_time = rel_local_time
        record.rel_clock = snapshot
        self.open_record = None

    def apply_rule_b(self, observer: Tid, clock: VectorClock) -> List[int]:
        """Apply rule (b) at a release by ``observer`` whose current clock
        is ``clock``: consume every other thread's critical sections whose
        acquire is ordered before this release, joining their release
        clocks. Iterates to a fixpoint since joins can order more
        acquires. Returns eids of releases newly ordered (graph edges).

        The observer's own records are included: rule (b) has no thread
        restriction, and for WCP a same-thread conclusion r1 ≺ r2 feeds
        left-HB-composition joins that program order alone does not
        imply. (For DC, own records join no new information — the
        thread's clock already dominates its own past — so they are
        consumed silently.)
        """
        my_cursors = self.cursors.setdefault(observer, {})
        return _k.rule_b_fixpoint_sparse(self.records, my_cursors, clock)

    def gc_retire(self, floors: "GCFloors",
                  own_clock: Callable[[Tid], Optional[VectorClock]]) -> int:
        """Drop closed critical-section records no future release can
        join (streaming GC), preserving :meth:`apply_rule_b` behaviour
        bit-for-bit.

        A record of thread ``u`` is droppable when

        * every live observer ``v ≠ u`` covers its release time (the
          floor) — their rule-(b) scans would pass it join-free, merely
          advancing the cursor; and
        * ``u`` itself can never join it either: ``u`` is dead, or
          ``u``'s apply-side clock (WCP: ``P_u``, which lacks own
          program order and *does* consume own records) already
          dominates the recorded release snapshot, making the join
          condition ``clock.get(u) < rel_local_time`` false forever
          (the snapshot carries its own component).

        Only a *prefix* of a thread's FIFO queue may drop (the break
        conditions are per-record but cursor consumption is in order);
        observer cursors shift down with the prefix. Record lists and
        cursors of dead threads are removed outright — a dead thread
        neither acquires (so its dict slot can go without perturbing
        ``records`` iteration order, which the DC edge order depends
        on) nor releases (so its cursor is never read again).
        """
        retired = 0
        for tid in list(self.records):
            recs = self.records[tid]
            floor = floors.floor(tid)
            own = None if floors.is_dead(tid) else own_clock(tid)
            drop = 0
            for rec in recs:
                if not rec.closed or rec is self.open_record:
                    break
                if rec.rel_local_time > floor:
                    break
                if own is not None:
                    assert rec.rel_clock is not None
                    if not own.dominates(rec.rel_clock):
                        break
                drop += 1
            if drop:
                del recs[:drop]
                retired += drop
                for cursors in self.cursors.values():
                    i = cursors.get(tid)
                    if i is not None:
                        cursors[tid] = i - drop if i > drop else 0
            if not recs and floors.is_dead(tid):
                del self.records[tid]
        for observer in list(self.cursors):
            if floors.is_dead(observer):
                del self.cursors[observer]
        return retired


class DenseSourceClocks:
    """Dense analog of :class:`SourceClocks` used by the epoch
    detectors: latest ``(eid, local_time, snapshot list)`` per source
    *tid index* (int), over plain-list clocks.

    The compiled sync-op kernels (``repro.core._kernels``) construct
    instances through the class object carried in the detectors' sync
    context and reach into ``entries`` by attribute name — keep the
    slot layout in lockstep with the C side.
    """

    __slots__ = ("entries",)

    def __init__(self) -> None:
        self.entries: Dict[int, Tuple[int, int, List[int]]] = {}

    def record(self, ti: int, eid: int, t: int, snapshot: List[int]) -> None:
        """(Re-)insert at the end: iteration order is most-recent-last,
        matching :meth:`SourceClocks.record` (the reference), whose order
        the edge-minimising :meth:`join_into` scan is sensitive to."""
        _k.record_latest(self.entries, ti, (eid, t, snapshot))

    def join_into(self, values: List[int], skip_ti: int) -> Optional[List[int]]:
        """Join every other thread's snapshot whose source event is not
        already covered (vector-clock edge minimisation). Returns the
        newly ordered source eids, or None when nothing joined."""
        return _k.source_join_into(self.entries, values, skip_ti)


class DenseLockQueues:
    """Dense analog of :class:`LockQueues` with a single-owner tag for
    the DC ownership fast path.

    ``owner`` is -1 until the first acquire, then the acquiring tid
    index while the lock stays thread-exclusive, then -2 forever after
    a second thread acquires it.

    Like :class:`DenseSourceClocks`, instances are also built and
    mutated attribute-by-attribute from the compiled sync-op kernels;
    the record shape ``[acq_time, rel_eid, rel_time, rel_snapshot]``
    and the ``records``/``cursors``/``open_ti``/``open_rec``/``owner``
    names are part of that C contract.
    """

    __slots__ = ("records", "cursors", "open_ti", "open_rec", "owner")

    def __init__(self) -> None:
        # ti -> [[acq_time, rel_eid, rel_time, rel_snapshot|None], ...]
        self.records: Dict[int, List[List[object]]] = {}
        self.cursors: Dict[int, Dict[int, int]] = {}
        self.open_ti = -1
        self.open_rec: Optional[List[object]] = None
        self.owner = -1

    def on_acquire(self, ti: int, acq_time: int) -> None:
        rec: List[object] = [acq_time, -1, -1, None]
        recs = self.records.get(ti)
        if recs is None:
            recs = self.records[ti] = []
        recs.append(rec)
        self.open_ti = ti
        self.open_rec = rec

    def on_release(self, rel_eid: int, rel_time: int,
                   snapshot: List[int]) -> None:
        rec = self.open_rec
        assert rec is not None, "release without matching acquire"
        rec[1] = rel_eid
        rec[2] = rel_time
        rec[3] = snapshot
        self.open_ti = -1
        self.open_rec = None

    def apply_rule_b(self, observer: int,
                     values: List[int]) -> Optional[List[int]]:
        """Rule (b) fixpoint, exactly mirroring the reference: consume
        closed critical sections whose acquire is covered, joining their
        release snapshots. Returns newly ordered release eids or None."""
        cursors = self.cursors.get(observer)
        if cursors is None:
            cursors = self.cursors[observer] = {}
        return _k.rule_b_fixpoint(self.records, cursors, values)


def _retire_source_tables(tables: Dict[_K, SourceClocks],
                          floors: "GCFloors") -> int:
    """Retire covered entries from a dict of :class:`SourceClocks`,
    dropping keys whose table empties (lookups are by key, so removal
    cannot perturb any iteration order the analyses depend on)."""
    retired = 0
    empty: List[_K] = []
    for key, table in tables.items():
        retired += table.gc_retire(floors)
        if not table:
            empty.append(key)
    for key in empty:
        del tables[key]
    return retired

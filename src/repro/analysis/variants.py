"""Single resolution layer for detector variant × kernel backend.

Historically the CLI enforced ``--fast-vc`` / ``--batch`` mutual
exclusion with argparse and the kernel backend was a separate global
knob, so every entry point (the serial :class:`Vindicator` pipeline,
the parallel pool initializers, the serve shards) re-derived its own
``(variant, backend)`` pair ad hoc. This module centralizes that:

* :class:`VariantSpec` is the one resolved selection — a detector
  *variant* (``"reference"``, ``"fast"``, or ``"batch"``) plus an
  optional kernel-backend request (``"auto"``/``"python"``/
  ``"compiled"``, or None for "leave the process setting alone").

* :func:`resolve` collapses CLI-style flags into a spec. ``--batch``
  and ``--fast-vc`` are no longer mutually exclusive: the batch
  detectors *are* the epoch detectors plus the vectorized planner
  (:class:`~repro.analysis.batch._BatchMixin` subclasses the
  smarttrack detectors), so ``batch`` strictly subsumes ``fast`` and
  giving both simply means batch. Composing either with
  ``--kernels compiled`` routes the per-event remainder through the
  fused C kernels — the composite fast path.

* :func:`make_analysis_detector` / :func:`make_analysis_detectors`
  are the one place that maps a variant to detector classes, shared
  by the serial pipeline and the pool workers so they cannot drift.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Optional, Tuple, Union

from repro.core import kernels

#: Recognized detector variants, in increasing order of speed.
VARIANTS = ("reference", "fast", "batch")


@dataclass(frozen=True)
class VariantSpec:
    """A fully resolved detector-variant + kernel-backend selection.

    ``kernels_backend`` of None means "do not touch the process-wide
    backend" (whatever ``set_backend``/``VINDICATOR_KERNELS`` already
    installed stays in effect); any other value is installed by
    :meth:`apply` before analysis starts and travels with the spec
    across process boundaries (pool workers, serve shards) so a
    pipeline never silently mixes kernel implementations.
    """

    variant: str = "reference"
    kernels_backend: Optional[str] = None

    def __post_init__(self) -> None:
        if self.variant not in VARIANTS:
            raise ValueError(
                f"variant must be one of {', '.join(map(repr, VARIANTS))}"
                f", got {self.variant!r}")
        if self.kernels_backend is not None \
                and self.kernels_backend not in kernels.BACKENDS:
            raise ValueError(
                f"kernels_backend must be one of "
                f"{', '.join(map(repr, kernels.BACKENDS))} or None, "
                f"got {self.kernels_backend!r}")

    def apply(self) -> str:
        """Install the requested kernel backend process-wide (a no-op
        when the spec does not name one) and return the backend that is
        actually active afterwards — the value to ship to workers."""
        if self.kernels_backend is not None:
            kernels.set_backend(self.kernels_backend)
        return kernels.active_backend()

    def resolved(self) -> "VariantSpec":
        """A copy whose backend field is pinned to the *active* backend
        (resolving ``"auto"``/None), suitable for handing to a worker
        process that must reproduce this process's configuration."""
        return VariantSpec(self.variant, kernels.active_backend())


def coerce(value: Union[str, VariantSpec, None]) -> VariantSpec:
    """Normalize a legacy variant string (or None) to a spec."""
    if isinstance(value, VariantSpec):
        return value
    return VariantSpec(variant=value if value is not None else "reference")


def resolve(*, fast_vc: bool = False, batch: bool = False,
            variant: Optional[str] = None,
            kernels_backend: Optional[str] = None) -> VariantSpec:
    """Collapse CLI-style flags into one :class:`VariantSpec`.

    Precedence: an explicit ``variant`` name wins; otherwise ``batch``
    subsumes ``fast_vc`` (the batch detectors are the epoch detectors
    plus the vectorized planner, so ``--batch --fast-vc`` is simply
    batch, not an error).
    """
    if variant is None:
        variant = "batch" if batch else ("fast" if fast_vc else "reference")
    return VariantSpec(variant=variant, kernels_backend=kernels_backend)


def make_analysis_detector(which: str, variant: Union[str, VariantSpec],
                           prefilter: Any = None) -> Any:
    """Construct the ``which`` ∈ {"hb", "wcp", "dc"} detector for a
    variant. HB always runs the reference detector: FastTrack-style
    epochs do not reproduce its ``racing_at`` sets (which drive race
    classification) and HB is never the pipeline bottleneck. The DC
    detector is always built with ``build_graph=True`` — the pipeline
    needs the constraint graph for vindication."""
    variant = coerce(variant).variant
    if which == "hb":
        from repro.analysis.hb import HBDetector
        return HBDetector(prefilter=prefilter)
    if which not in ("wcp", "dc"):
        raise ValueError(f"unknown detector {which!r}")
    if variant == "batch":
        # Imported lazily: only the batch interpreter needs numpy.
        from repro.analysis.batch import BatchDCDetector, BatchWCPDetector
        return (BatchWCPDetector(prefilter=prefilter) if which == "wcp"
                else BatchDCDetector(build_graph=True, prefilter=prefilter))
    if variant == "fast":
        from repro.analysis.smarttrack import (EpochDCDetector,
                                               EpochWCPDetector)
        return (EpochWCPDetector(prefilter=prefilter) if which == "wcp"
                else EpochDCDetector(build_graph=True, prefilter=prefilter))
    if which == "wcp":
        from repro.analysis.wcp import WCPDetector
        return WCPDetector(prefilter=prefilter)
    from repro.analysis.dc import DCDetector
    return DCDetector(build_graph=True, prefilter=prefilter)


def make_analysis_detectors(variant: Union[str, VariantSpec],
                            prefilter: Any = None) -> Tuple[Any, Any, Any]:
    """The full ``(hb, wcp, dc)`` trio for one variant."""
    return (make_analysis_detector("hb", variant, prefilter),
            make_analysis_detector("wcp", variant, prefilter),
            make_analysis_detector("dc", variant, prefilter))

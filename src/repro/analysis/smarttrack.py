"""SmartTrack-style epoch & ownership fast paths for WCP and DC.

:class:`EpochWCPDetector` and :class:`EpochDCDetector` are drop-in
replacements for :class:`~repro.analysis.wcp.WCPDetector` and
:class:`~repro.analysis.dc.DCDetector` that report *identical* races
(and, for DC, an identical constraint graph, edge for edge in insertion
order) while doing substantially less work per event. They follow
SmartTrack [Roemer, Genç & Bond, PLDI 2020], which ported FastTrack's
[Flanagan & Freund 2009] epoch/ownership ideas to the predictive
analyses, adapted to this repo's exact reference semantics:

* **Dense clock kernel** — one :class:`~repro.core.vectorclock_dense.TidTable`
  per trace interns thread ids to indices; every clock is a plain
  ``list`` of ints of fixed length ``T``, joined by the fused kernels in
  :mod:`repro.core.vectorclock_dense`. A single preprocessing pass
  (:class:`_TraceIndex`) interns variables, locks, and volatiles and
  precomputes each access's held-lock index tuple, so the per-event loop
  never hashes a thread id or rebuilds a lock stack.

* **Exclusive/shared variable staging** — a variable accessed by one
  thread only keeps O(1) last-read/last-write fields (the reference
  detector also skips its scan in this case, so outcomes agree
  trivially). The first foreign access *promotes* the variable to
  per-thread maps, preserving the reference's insertion order so the
  scan — and therefore race reporting and forced-ordering order — is
  bit-identical.

* **Epoch gates (DC only)** — after promotion, the last write is also
  kept as a FastTrack-style epoch ``t@u``, plus a chained
  single-read epoch for the reads since that write. When the current
  clock covers the write epoch, *every* prior write (and every read up
  to that write) is provably covered, so the scan is skipped in O(1);
  likewise the read scan when the read epoch chain is intact and
  covered. The proof needs every clock component ``c[u] >= t`` to imply
  ``c ⊒`` (u's full post-access clock at time t), which holds for DC
  exactly when ``force_order`` *and* ``transitive_force`` are on: every
  propagation channel (access snapshots, release clocks, rule (a)/(b)
  records, fork copies) then carries full post-force snapshots. The
  gates check both flags at consult time and fall back to the exact
  scan otherwise. They are *never* used for WCP: the access snapshots
  are P clocks, but rules (a)/(b) join H snapshots into P only, so a P
  component reaching another thread never implies that thread covers
  the source's full P snapshot — the implication fails. (The flags must
  not be flipped mid-trace — the same caveat the reference detectors
  carry.)

* **Lock ownership (DC only)** — rule (b) at a release by the only
  thread that ever acquired the lock is a provable no-op (the thread's
  clock dominates its own past, so its own records join nothing — see
  :meth:`~repro.analysis.sync_structures.LockQueues.apply_rule_b`), so
  the whole queue walk is skipped while the lock stays single-owner.
  Not valid for WCP, where own records feed the left-HB-composition.

* **Version-gated snapshot reuse** — the per-access clock snapshot is a
  ``list.copy()`` taken only when the clock changed since the thread's
  last snapshot (a dirty flag cleared at every non-self-advance
  mutation), mirroring the reference's version-keyed cache with a
  cheaper copy. ``snapshots_copied``/``snapshots_reused`` counters make
  the win measurable (``benchmarks/results/``).

Counters for all of the above are exposed via :meth:`fast_stats` and
published to the :mod:`repro.obs` metrics registry under
``analysis.<relation>_epoch.*``; the :class:`~repro.analysis.races.RaceReport`
counters stay identical to the reference detectors' so full pipeline
documents compare equal modulo timing/metrics.
"""

from __future__ import annotations

import weakref
from operator import attrgetter
from typing import (Any, Callable, Collection, Dict, List, Optional, Set,
                    Tuple)

from repro import obs
from repro.analysis.base import Detector
from repro.analysis.races import DynamicRace, RaceReport
from repro.core.events import Event, EventKind, Target, Tid
from repro.core.exceptions import MalformedTraceError
from repro.core.trace import Trace
from repro.core import kernels as _k
from repro.core.vectorclock_dense import DenseVectorClock, TidTable
from repro.analysis.sync_structures import DenseLockQueues, DenseSourceClocks
from repro.graph.constraint_graph import ConstraintGraph

__all__ = ["EpochDCDetector", "EpochWCPDetector"]

_by_eid = attrgetter("eid")

# Compact per-event kind codes (ordered so range checks dispatch fast).
_READ, _WRITE, _ACQ, _REL, _FORK, _JOIN, _VWR, _VRD, _OTHER = range(9)

# Slots of the fused-kernel counter block (``_fs``): the compiled
# access kernel bumps these list entries at C speed instead of
# round-tripping instance attributes; ``_drain_fused`` folds them back
# into the named counters before anything reads them.  Order must match
# the FS_* constants in _kernels.c.
_FS_JOINS, _FS_FILTER_SKIPS, _FS_FILTER_CHECKS = 0, 1, 2
_FS_EXCL_FAST, _FS_SNAP_REUSES, _FS_SNAP_COPIES = 3, 4, 5
_FS_GRAPH_EDGES, _FS_RULE_B_SKIPS, _FS_LOCK_TRANSFERS = 6, 7, 8
_FS_SLOTS = 9

# Keyed by id() of the (immortal, module-level) enum member: enum's
# __hash__ is a Python-level call, id() hashing is C-speed, and this map
# is hit once per event during preprocessing.
_KIND_CODE: Dict[int, int] = {
    id(EventKind.READ): _READ,
    id(EventKind.WRITE): _WRITE,
    id(EventKind.ACQUIRE): _ACQ,
    id(EventKind.RELEASE): _REL,
    id(EventKind.FORK): _FORK,
    id(EventKind.JOIN): _JOIN,
    id(EventKind.VOLATILE_WRITE): _VWR,
    id(EventKind.VOLATILE_READ): _VRD,
    id(EventKind.BEGIN): _OTHER,
    id(EventKind.END): _OTHER,
}


class _TraceIndex:
    """One-pass columnar preprocessing of a trace for the fast detectors.

    Columns (parallel to ``trace.events``):

    * ``codes`` — event kind as a small int (bytearray);
    * ``tix`` — executing thread's tid index;
    * ``tgt`` — role-specific target index: variable index for accesses,
      lock index for acquire/release, child tid index for fork/join,
      volatile index for volatile accesses, -1 otherwise;
    * ``held`` — for accesses under locks, the tuple of held lock
      indices (outermost first, matching ``trace.held_locks``); None
      when no locks are held.
    """

    __slots__ = ("table", "codes", "tix", "tgt", "held",
                 "var_names", "lock_names", "vol_names")

    def __init__(self, trace: Trace):
        events = trace.events
        n = len(events)
        table = TidTable(trace.threads)
        tid_index = table.index
        intern_tid = table.intern
        var_ix: Dict[Target, int] = {}
        lock_ix: Dict[Target, int] = {}
        vol_ix: Dict[Target, int] = {}
        codes = bytearray(n)
        tix = [0] * n
        tgt = [-1] * n
        held: List[Optional[Tuple[int, ...]]] = [None] * n
        acq_lock: Dict[int, int] = {}  # acquire eid -> lock index
        enclosing = trace.enclosing_acquires
        kind_code = _KIND_CODE
        for e in events:
            eid = e.eid
            tix[eid] = tid_index[e.tid]
            code = kind_code[id(e.kind)]
            codes[eid] = code
            if code <= _WRITE:
                vi = var_ix.get(e.target)
                if vi is None:
                    vi = var_ix[e.target] = len(var_ix)
                tgt[eid] = vi
                acqs = enclosing[eid]
                if acqs:
                    held[eid] = tuple(acq_lock[a] for a in acqs)
            elif code <= _REL:
                li = lock_ix.get(e.target)
                if li is None:
                    li = lock_ix[e.target] = len(lock_ix)
                tgt[eid] = li
                if code == _ACQ:
                    acq_lock[eid] = li
            elif code <= _JOIN:
                # Fork targets may name threads that never run an event;
                # intern them so clock storage covers their index.
                tgt[eid] = intern_tid(e.target)
            elif code <= _VRD:
                xi = vol_ix.get(e.target)
                if xi is None:
                    xi = vol_ix[e.target] = len(vol_ix)
                tgt[eid] = xi
        self.table = table
        self.codes = codes
        self.tix = tix
        self.tgt = tgt
        self.held = held
        self.var_names: List[Target] = list(var_ix)
        self.lock_names: List[Target] = list(lock_ix)
        self.vol_names: List[Target] = list(vol_ix)


#: One preprocessing pass per trace: WCP and DC (and repeated runs over
#: the same trace, e.g. the lockstep Vindicator pipeline) share the
#: read-only index. Weak keys keep the cache from pinning traces.
_INDEX_CACHE: "weakref.WeakKeyDictionary[Trace, _TraceIndex]" = (
    weakref.WeakKeyDictionary())


def _index_for(trace: Trace) -> _TraceIndex:
    index = _INDEX_CACHE.get(trace)
    if index is None:
        index = _TraceIndex(trace)
        _INDEX_CACHE[trace] = index
    return index


class _VarState:
    """Staged per-variable access metadata.

    EXCLUSIVE stage (``owner >= 0``): only ``owner`` has accessed the
    variable; its last read/write live in the O(1) ``x*`` fields.
    SHARED stage (``owner == -1``): per-thread last-access maps
    ``writes``/``reads`` (tid index -> ``(time, event, snapshot)``,
    insertion-ordered exactly like the reference's ``AccessHistory``)
    plus the epoch gate fields:

    * ``we_time @ we_ti`` — the last write (0 = no write yet);
    * ``rg_*`` — the chained read epoch since the last write:
      ``rg_shared`` marks a broken chain (concurrent reads), after
      which only a write resets it.
    """

    __slots__ = ("owner", "xw_time", "xw_ev", "xw_snap",
                 "xr_time", "xr_ev", "xr_snap", "writes", "reads",
                 "we_time", "we_ti", "rg_time", "rg_ti", "rg_shared")

    def __init__(self, owner: int):
        self.owner = owner
        self.xw_time = 0
        self.xw_ev: Optional[Event] = None
        self.xw_snap: Optional[List[int]] = None
        self.xr_time = 0
        self.xr_ev: Optional[Event] = None
        self.xr_snap: Optional[List[int]] = None
        self.writes: Optional[Dict[int, Tuple[int, Event, Optional[List[int]]]]] = None
        self.reads: Optional[Dict[int, Tuple[int, Event, Optional[List[int]]]]] = None
        self.we_time = 0
        self.we_ti = 0
        self.rg_time = 0
        self.rg_ti = 0
        self.rg_shared = False


class _EpochDetectorBase(Detector):
    """Shared machinery of the epoch-optimised WCP/DC detectors: trace
    preprocessing, staged variable metadata, the gated race check, and
    the dirty-flag snapshot cache."""

    #: Whether the epoch gates may be consulted (DC only; see module doc).
    _use_gates = False

    def __init__(self, prefilter: Optional[Collection[Target]] = None):
        super().__init__(prefilter)
        self._ix: Optional[_TraceIndex] = None
        self._codes = bytearray()
        self._tix: List[int] = []
        self._tgt: List[int] = []
        self._held: List[Optional[Tuple[int, ...]]] = []
        self._lt: List[int] = []
        self._T = 0
        self._nv = 0
        self._vars: List[Optional[_VarState]] = []
        self._snaps: List[Optional[List[int]]] = []
        self._snap_ok: List[bool] = []
        self._cand: Optional[List[bool]] = None
        self._pending_vars: List[Dict[int, Tuple[Set[int], Set[int]]]] = []
        self._n_excl_fast = 0
        self._n_w_gate = 0
        self._n_r_gate = 0
        self._n_promotions = 0
        self._n_inflations = 0
        self._n_rule_b_skips = 0
        self._n_lock_transfers = 0
        self._n_snap_copies = 0
        self._n_snap_reuses = 0
        # The fused compiled access kernel and its context tuple (see
        # kernels._FUSED_NAMES); None/() routes handle() through the
        # open-coded _on_access, which defines the semantics.
        self._c_access: Optional[Callable[..., int]] = None
        self._ctx: Tuple[Any, ...] = ()
        # The fused compiled sync-op kernels and their shared context;
        # None routes on_acquire/on_release/on_fork/on_join through the
        # open-coded bodies, which define the semantics.
        self._c_acquire: Optional[Callable[..., Any]] = None
        self._c_release: Optional[Callable[..., Any]] = None
        self._c_fork: Optional[Callable[..., Any]] = None
        self._c_join: Optional[Callable[..., Any]] = None
        self._sctx: Tuple[Any, ...] = ()
        self._fs: List[int] = [0] * _FS_SLOTS

    def metric_label(self) -> str:
        return super().metric_label() + "_epoch"

    def begin_trace(self, trace: Trace) -> None:
        super().begin_trace(trace)
        ix = _index_for(trace)
        self._ix = ix
        self._codes = ix.codes
        self._tix = ix.tix
        self._tgt = ix.tgt
        self._held = ix.held
        self._lt = trace.local_time
        self._T = len(ix.table)
        self._nv = len(ix.var_names)
        self._vars = [None] * self._nv
        self._snaps = [None] * self._T
        self._snap_ok = [False] * self._T
        self._pending_vars = [{} for _ in range(self._T)]
        if self.prefilter is not None:
            pf = self.prefilter
            self._cand = [v in pf for v in ix.var_names]
        else:
            self._cand = None
        self._n_excl_fast = 0
        self._n_w_gate = 0
        self._n_r_gate = 0
        self._n_promotions = 0
        self._n_inflations = 0
        self._n_rule_b_skips = 0
        self._n_lock_transfers = 0
        self._n_snap_copies = 0
        self._n_snap_reuses = 0
        self._c_access = None
        self._ctx = ()
        self._c_acquire = None
        self._c_release = None
        self._c_fork = None
        self._c_join = None
        self._sctx = ()
        self._fs = [0] * _FS_SLOTS

    def _drain_fused(self) -> None:
        """Fold the compiled kernel's counter block back into the named
        instance counters (a no-op on the python backend, whose
        open-coded paths bump the attributes directly)."""
        fs = self._fs
        self._n_joins += fs[_FS_JOINS]
        self._filter_skips += fs[_FS_FILTER_SKIPS]
        self._filter_checks += fs[_FS_FILTER_CHECKS]
        self._n_excl_fast += fs[_FS_EXCL_FAST]
        self._n_snap_reuses += fs[_FS_SNAP_REUSES]
        self._n_snap_copies += fs[_FS_SNAP_COPIES]
        self._n_rule_b_skips += fs[_FS_RULE_B_SKIPS]
        self._n_lock_transfers += fs[_FS_LOCK_TRANSFERS]
        for i in range(_FS_SLOTS):
            fs[i] = 0

    def finish(self) -> RaceReport:
        self._drain_fused()
        return super().finish()

    def _shared_slow(self, e: Event, is_write: bool) -> None:
        raise NotImplementedError  # pragma: no cover - subclasses override

    def analyze(self, trace: Trace) -> RaceReport:
        """Run the detector over ``trace`` (specialised driving loop).

        With the fused compiled access kernel installed, accesses go
        straight to it with every per-event lookup hoisted into locals:
        once the access body itself is native, the generic ``handle``
        indirection (a bound-method call plus two attribute loads per
        event) is the largest remaining Python cost. Each event takes
        exactly the branch ``handle`` would, so streaming callers that
        drive ``begin_trace``/``handle``/``finish`` by hand see
        identical behaviour.
        """
        with obs.span(f"analysis.{self.metric_label()}") as sp:
            self.begin_trace(trace)
            fused = self._c_access
            if fused is None:
                for event in trace:
                    self.handle(event)
            else:
                codes = self._codes
                ctx = self._ctx
                handle = self.handle
                shared_slow = self._shared_slow
                for event in trace:
                    code = codes[event.eid]
                    if code <= _WRITE:
                        if fused(ctx, event.eid, code == _WRITE, event):
                            shared_slow(event, code == _WRITE)
                    else:
                        handle(event)
            report = self.finish()
            sp.annotate("events", len(trace))
            sp.annotate("races", len(report.races))
        return report

    def _bind_fused(self, fused: Optional[Callable[..., int]],
                    clock_a: List[Any], clock_b: List[Any],
                    pending_fork: Dict[int, Any],
                    cs_writes: Dict[int, "DenseSourceClocks"],
                    cs_reads: Dict[int, "DenseSourceClocks"],
                    ebuf: Optional[List[int]] = None) -> None:
        """Install the fused compiled access kernel for this trace.

        No-op (handle() keeps routing through the open-coded
        ``_on_access``) under the python backend, or when preprocessing
        produced non-list local-time storage the C kernel cannot index.
        The context tuple captures every container the kernel touches;
        all of them are mutated in place for the rest of the trace, so
        the snapshot stays live.  ``ebuf`` is the DC edge buffer the
        kernel appends graph edges to (None for WCP and no-graph DC).
        """
        if fused is None or type(self._lt) is not list:
            self._c_access = None
            self._ctx = ()
            return
        self._ctx = (self._fs, self._tix, self._lt, self._tgt, self._held,
                     clock_a, clock_b, pending_fork, self._snap_ok,
                     self._snaps, self._cand, self._vars,
                     self._pending_vars, cs_writes, cs_reads,
                     self._nv, self._T,
                     bool(self.force_order and self.transitive_force),
                     _VarState, ebuf)
        self._c_access = fused

    def _bind_sync(self, kernels: Tuple[Optional[Callable[..., Any]], ...],
                   clock_a: List[Any], clock_b: List[Any],
                   pending_fork: Dict[int, Any],
                   queues: List[Optional["DenseLockQueues"]],
                   cs_writes: Dict[int, "DenseSourceClocks"],
                   cs_reads: Dict[int, "DenseSourceClocks"],
                   ebuf: Optional[List[int]],
                   lock_h: Optional[List[Any]],
                   lock_p: Optional[List[Any]]) -> None:
        """Install the fused compiled sync-op kernels for this trace.

        ``kernels`` is the (acquire, release, fork, join) tuple from the
        dispatch module — all None under the python backend or when sync
        fusion is disabled, which keeps the open-coded handler bodies in
        charge. The context mirrors ``_bind_fused``'s: one shared tuple
        of live, mutated-in-place containers."""
        acquire, release, fork, join = kernels
        if acquire is None or type(self._lt) is not list:
            self._c_acquire = None
            self._c_release = None
            self._c_fork = None
            self._c_join = None
            self._sctx = ()
            return
        self._sctx = (self._fs, self._tix, self._lt, self._tgt,
                      clock_a, clock_b, pending_fork, self._snap_ok,
                      queues, DenseLockQueues, self._pending_vars,
                      cs_writes, cs_reads, DenseSourceClocks,
                      self._nv, self._T, ebuf, lock_h, lock_p)
        self._c_acquire = acquire
        self._c_release = release
        self._c_fork = fork
        self._c_join = join

    # ------------------------------------------------------------------
    # Observability
    # ------------------------------------------------------------------
    def fast_stats(self) -> Dict[str, int]:
        """Fast-path statistics for the last trace (also published to
        the metrics registry under ``analysis.<label>.*``). These live
        outside the report counters so reports stay bit-identical to
        the reference detectors'."""
        self._drain_fused()
        return {
            "epoch_exclusive_hits": self._n_excl_fast,
            "epoch_write_gate_hits": self._n_w_gate,
            "epoch_read_gate_hits": self._n_r_gate,
            "epoch_promotions": self._n_promotions,
            "epoch_read_inflations": self._n_inflations,
            "ownership_rule_b_skips": self._n_rule_b_skips,
            "ownership_lock_transfers": self._n_lock_transfers,
            "snapshots_copied": self._n_snap_copies,
            "snapshots_reused": self._n_snap_reuses,
        }

    def _publish(self, reg: obs.AnyRegistry) -> None:
        self._drain_fused()  # super()._publish reads _n_joins
        super()._publish(reg)
        label = self.metric_label()
        for name, value in self.fast_stats().items():
            reg.add(f"analysis.{label}.{name}", value)

    # ------------------------------------------------------------------
    # Snapshots (version-gated reuse via a per-thread dirty flag)
    # ------------------------------------------------------------------
    def _take_snapshot(self, ti: int, values: List[int]) -> Optional[List[int]]:
        """The access-history snapshot for thread ``ti``: None unless
        transitive forcing could consume it (mirroring the reference),
        otherwise the cached copy while the clock is unchanged since the
        thread's last snapshot (self-advances excepted — consumers
        re-derive the own component before joining, see
        ``VectorClock.advance``)."""
        if self.force_order and self.transitive_force:
            if self._snap_ok[ti]:
                self._n_snap_reuses += 1
                snap = self._snaps[ti]
                assert snap is not None
                return snap
            snap = values.copy()
            self._snaps[ti] = snap
            self._snap_ok[ti] = True
            self._n_snap_copies += 1
            return snap
        return None

    # ------------------------------------------------------------------
    # Variable staging
    # ------------------------------------------------------------------
    def _promote(self, st: _VarState) -> None:
        """EXCLUSIVE -> SHARED: materialise the owner's last accesses
        into the per-thread maps (owner first, preserving the
        reference's insertion order) and seed the epoch gates."""
        owner = st.owner
        st.owner = -1
        writes: Dict[int, Tuple[int, Event, Optional[List[int]]]] = {}
        reads: Dict[int, Tuple[int, Event, Optional[List[int]]]] = {}
        st.writes = writes
        st.reads = reads
        xw_t = st.xw_time
        if xw_t:
            assert st.xw_ev is not None
            writes[owner] = (xw_t, st.xw_ev, st.xw_snap)
            st.we_time = xw_t
            st.we_ti = owner
        xr_t = st.xr_time
        if xr_t:
            assert st.xr_ev is not None
            reads[owner] = (xr_t, st.xr_ev, st.xr_snap)
            if xr_t > xw_t:
                st.rg_time = xr_t
                st.rg_ti = owner
        st.xw_ev = st.xr_ev = None
        st.xw_snap = st.xr_snap = None
        self._n_promotions += 1

    # ------------------------------------------------------------------
    # The race check (exact mirror of Detector.check_access outcomes).
    # The prefilter gate and the exclusive fast path are inlined into
    # each subclass's _on_access — the overwhelmingly common cases pay
    # no extra call — so this only handles SHARED-stage variables.
    # ------------------------------------------------------------------
    def _check_shared(self, e: Event, ti: int, t: int,
                      values: List[int], is_write: bool,
                      st: _VarState) -> None:
        if st.owner >= 0:
            self._promote(st)
        writes = st.writes
        reads = st.reads
        assert writes is not None and reads is not None
        use_gates = (self._use_gates and self.force_order
                     and self.transitive_force)
        # One fused kernel call covers the write-epoch gate (the last
        # write being covered implies — by the transitive-force
        # propagation invariant — every prior write and every read up to
        # it is too), the chained-read-epoch gate, and the exact
        # writes-then-reads table scans when a gate does not apply.
        racing, w_gate, r_gate = _k.gated_scan(
            writes, reads if is_write else None, ti, values, use_gates,
            st.we_time, st.we_ti, st.rg_time, st.rg_ti, st.rg_shared)
        if w_gate:
            self._n_w_gate += 1
        if r_gate:
            self._n_r_gate += 1
        if racing is not None:
            self.racing_at[e.eid] = frozenset(rec[1].eid for _, rec in racing)
            shortest = max((rec[1] for _, rec in racing), key=_by_eid)
            race = DynamicRace(first=shortest, second=e, relation=self.relation)
            assert self.report is not None
            self.report.races.append(race)
            if self.force_order:
                transitive = self.transitive_force
                for u, rec in racing:
                    prior_t = rec[0]
                    if values[u] < prior_t:
                        values[u] = prior_t
                        if transitive and rec[2] is not None:
                            _k.join_into_list(values, rec[2])
                            self._n_joins += 1
                        self._snap_ok[ti] = False
                        self._forced_order_dense(rec[1], e, rec[2])
        snap2 = self._take_snapshot(ti, values)
        # Most-recent-last re-insertion, matching Detector.check_access:
        # the force loop above consumes `racing` in table order, so table
        # order must be a pure function of the access sequence.
        if is_write:
            _k.record_latest(writes, ti, (t, e, snap2))
            if self._use_gates:
                st.we_time = t
                st.we_ti = ti
                st.rg_time = 0
                st.rg_shared = False
        else:
            _k.record_latest(reads, ti, (t, e, snap2))
            if self._use_gates and not st.rg_shared:
                rg_t = st.rg_time
                if rg_t == 0 or values[st.rg_ti] >= rg_t:
                    st.rg_time = t
                    st.rg_ti = ti
                else:
                    st.rg_shared = True
                    self._n_inflations += 1

    def _forced_order_dense(self, prior: Event, e: Event,
                            snapshot: Optional[List[int]]) -> None:
        """Dense analog of :meth:`Detector.on_forced_order`, called by
        :meth:`_check_shared` with the racing prior's stored snapshot
        list after the force was joined into the analysis clock."""

    # ------------------------------------------------------------------
    # Queries shared by both subclasses
    # ------------------------------------------------------------------
    def _clock_values_of(self, tid: Tid) -> Optional[List[int]]:
        raise NotImplementedError

    def clock_of(self, tid: Tid) -> Optional[DenseVectorClock]:
        """The thread's current analysis clock as a live dense view
        (None before its first event), mirroring the reference API."""
        values = self._clock_values_of(tid)
        if values is None:
            return None
        assert self._ix is not None
        return DenseVectorClock(self._ix.table, values=values)

    def ordered_to_current(self, prior: Event, tid: Tid) -> bool:
        if prior.tid == tid:
            return True
        values = self._clock_values_of(tid)
        if values is None:
            return False
        return values[self._tix[prior.eid]] >= self._lt[prior.eid]


class EpochWCPDetector(_EpochDetectorBase):
    """Epoch-optimised WCP detector (verdict-identical to
    :class:`~repro.analysis.wcp.WCPDetector`).

    Uses the dense kernel, exclusive-variable staging, precomputed held
    locks, and int-keyed rule (a) tables. The DC-only epoch gates and
    lock-ownership skip are *not* applied — both are unsound for WCP
    (see the module docstring).
    """

    relation = "WCP"
    _use_gates = False

    def __init__(self, prefilter: Optional[Collection[Target]] = None):
        super().__init__(prefilter)
        self._h: List[Optional[List[int]]] = []
        self._p: List[Optional[List[int]]] = []
        self._lock_h: List[Optional[List[int]]] = []
        self._lock_p: List[Optional[List[int]]] = []
        self._queues: List[Optional[DenseLockQueues]] = []
        self._cs_writes: Dict[int, DenseSourceClocks] = {}
        self._cs_reads: Dict[int, DenseSourceClocks] = {}
        self._vol_writes: List[Optional[DenseSourceClocks]] = []
        self._vol_reads: List[Optional[DenseSourceClocks]] = []
        self._pending_fork: Dict[int, List[int]] = {}

    def begin_trace(self, trace: Trace) -> None:
        super().begin_trace(trace)
        assert self._ix is not None
        self._h = [None] * self._T
        self._p = [None] * self._T
        n_locks = len(self._ix.lock_names)
        self._lock_h = [None] * n_locks
        self._lock_p = [None] * n_locks
        self._queues = [None] * n_locks
        self._cs_writes = {}
        self._cs_reads = {}
        n_vols = len(self._ix.vol_names)
        self._vol_writes = [None] * n_vols
        self._vol_reads = [None] * n_vols
        self._pending_fork = {}
        self._bind_fused(_k.access_wcp, self._h, self._p,
                         self._pending_fork, self._cs_writes,
                         self._cs_reads)
        self._bind_sync(
            (_k.acquire_wcp, _k.release_wcp, _k.fork_wcp, _k.join_wcp),
            self._h, self._p, self._pending_fork, self._queues,
            self._cs_writes, self._cs_reads, None,
            self._lock_h, self._lock_p)

    def _clock_values_of(self, tid: Tid) -> Optional[List[int]]:
        assert self._ix is not None
        idx = self._ix.table.index.get(tid)
        return None if idx is None else self._p[idx]

    # ------------------------------------------------------------------
    # Clock plumbing
    # ------------------------------------------------------------------
    def _advance(self, ti: int, t: int) -> Tuple[List[int], List[int]]:
        """Advance H to this event (P carries no own program order) and
        consume any pending fork edge."""
        h = self._h[ti]
        if h is None:
            h = self._h[ti] = [0] * self._T
            self._p[ti] = [0] * self._T
        h[ti] = t
        p = self._p[ti]
        assert p is not None
        if self._pending_fork:
            parent = self._pending_fork.pop(ti, None)
            if parent is not None:
                _k.join_into_list(h, parent)
                if _k.join_into_list_changed(p, parent):
                    self._snap_ok[ti] = False
                self._n_joins += 2
        return h, p

    # ------------------------------------------------------------------
    # Dispatch
    # ------------------------------------------------------------------
    def handle(self, event: Event) -> None:
        code = self._codes[event.eid]
        if code <= _WRITE:
            fused = self._c_access
            if fused is None:
                self._on_access(event, code == _WRITE)
            elif fused(self._ctx, event.eid, code == _WRITE, event):
                self._shared_slow(event, code == _WRITE)
        elif code == _ACQ:
            self.on_acquire(event)
        elif code == _REL:
            self.on_release(event)
        elif code == _FORK:
            self.on_fork(event)
        elif code == _JOIN:
            self.on_join(event)
        elif code == _VWR:
            self.on_volatile_write(event)
        elif code == _VRD:
            self.on_volatile_read(event)
        else:
            eid = event.eid
            self._advance(self._tix[eid], self._lt[eid])

    # ------------------------------------------------------------------
    # Accesses
    # ------------------------------------------------------------------
    def _shared_slow(self, e: Event, is_write: bool) -> None:
        # The fused kernel already advanced the clocks, staged rule (a),
        # and passed the prefilter; only the SHARED-stage check remains.
        eid = e.eid
        ti = self._tix[eid]
        p = self._p[ti]
        st = self._vars[self._tgt[eid]]
        assert p is not None and st is not None
        self._check_shared(e, ti, self._lt[eid], p, is_write, st)

    def _on_access(self, e: Event, is_write: bool) -> None:
        eid = e.eid
        ti = self._tix[eid]
        t = self._lt[eid]
        # Inlined _advance: one method call per access is measurable.
        h = self._h[ti]
        if h is None:
            h = self._h[ti] = [0] * self._T
            self._p[ti] = [0] * self._T
        h[ti] = t
        p = self._p[ti]
        assert p is not None
        if self._pending_fork:
            parent = self._pending_fork.pop(ti, None)
            if parent is not None:
                _k.join_into_list(h, parent)
                if _k.join_into_list_changed(p, parent):
                    self._snap_ok[ti] = False
                self._n_joins += 2
        vi = self._tgt[eid]
        held = self._held[eid]
        if held is not None:
            # Rule (a): join the recorded conflicting-critical-section
            # clocks, record this access as pending for the release.
            nv = self._nv
            cs_writes = self._cs_writes
            pend = self._pending_vars[ti]
            snap_ok = self._snap_ok
            for li in held:
                key = li * nv + vi
                src = cs_writes.get(key)
                if src is not None and _k.source_join_into(
                        src.entries, p, ti) is not None:
                    snap_ok[ti] = False
                if is_write:
                    src = self._cs_reads.get(key)
                    if src is not None and _k.source_join_into(
                            src.entries, p, ti) is not None:
                        snap_ok[ti] = False
                cur = pend.get(li)
                if cur is None:
                    cur = pend[li] = (set(), set())
                cur[is_write].add(vi)
        # Inlined race-check entry: prefilter gate and the exclusive
        # (single-accessor) fast path, the overwhelmingly common case.
        cand = self._cand
        if cand is not None:
            if not cand[vi]:
                self._filter_skips += 1
                return
            self._filter_checks += 1
        st = self._vars[vi]
        if st is None:
            st = self._vars[vi] = _VarState(ti)
        if st.owner == ti:
            self._n_excl_fast += 1
            if self.force_order and self.transitive_force:
                if self._snap_ok[ti]:
                    self._n_snap_reuses += 1
                    snap = self._snaps[ti]
                else:
                    snap = p.copy()
                    self._snaps[ti] = snap
                    self._snap_ok[ti] = True
                    self._n_snap_copies += 1
            else:
                snap = None
            if is_write:
                st.xw_time = t
                st.xw_ev = e
                st.xw_snap = snap
            else:
                st.xr_time = t
                st.xr_ev = e
                st.xr_snap = snap
            return
        self._check_shared(e, ti, t, p, is_write, st)

    def on_read(self, e: Event) -> None:
        self._on_access(e, False)

    def on_write(self, e: Event) -> None:
        self._on_access(e, True)

    def _forced_order_dense(self, prior: Event, e: Event,
                            snapshot: Optional[List[int]]) -> None:
        # Forced race edges are hard orderings: mirror them into H as
        # well as P so they survive WCP's H-only propagation channels
        # (see WCPDetector.on_forced_order for the full rationale).
        h = self._h[self._tix[e.eid]]
        assert h is not None
        u = self._tix[prior.eid]
        prior_t = self._lt[prior.eid]
        if h[u] < prior_t:
            h[u] = prior_t
        if self.transitive_force and snapshot is not None:
            _k.join_into_list(h, snapshot)
            self._n_joins += 1

    # ------------------------------------------------------------------
    # Lock operations
    # ------------------------------------------------------------------
    def on_acquire(self, e: Event) -> None:
        kernel = self._c_acquire
        if kernel is not None:
            kernel(self._sctx, e.eid)
            return
        eid = e.eid
        ti = self._tix[eid]
        t = self._lt[eid]
        h, p = self._advance(ti, t)
        li = self._tgt[eid]
        lock_h = self._lock_h[li]
        if lock_h is not None:
            _k.join_into_list(h, lock_h)
            lock_p = self._lock_p[li]
            assert lock_p is not None
            if _k.join_into_list_changed(p, lock_p):  # right HB composition
                self._snap_ok[ti] = False
            self._n_joins += 2
        queues = self._queues[li]
        if queues is None:
            queues = self._queues[li] = DenseLockQueues()
        queues.on_acquire(ti, t)

    def on_release(self, e: Event) -> None:
        kernel = self._c_release
        if kernel is not None:
            if kernel(self._sctx, e.eid):
                raise KeyError(e.target)
            return
        eid = e.eid
        ti = self._tix[eid]
        t = self._lt[eid]
        h, p = self._advance(ti, t)
        li = self._tgt[eid]
        queues = self._queues[li]
        if queues is None:
            raise KeyError(e.target)
        if queues.apply_rule_b(ti, p) is not None:
            self._snap_ok[ti] = False
        h_snapshot = h.copy()
        pending = self._pending_vars[ti].pop(li, None)
        if pending is not None:
            read_vars, written_vars = pending
            nv = self._nv
            for vi in written_vars:
                table = self._cs_writes.get(li * nv + vi)
                if table is None:
                    table = self._cs_writes[li * nv + vi] = DenseSourceClocks()
                table.record(ti, eid, t, h_snapshot)
            for vi in read_vars:
                table = self._cs_reads.get(li * nv + vi)
                if table is None:
                    table = self._cs_reads[li * nv + vi] = DenseSourceClocks()
                table.record(ti, eid, t, h_snapshot)
        queues.on_release(eid, t, h_snapshot)
        self._lock_h[li] = h_snapshot
        self._lock_p[li] = p.copy()

    # ------------------------------------------------------------------
    # Fork / join / volatiles (hard WCP edges; H snapshots joined into P
    # by rule (c)'s left composition — see the reference detector)
    # ------------------------------------------------------------------
    def on_fork(self, e: Event) -> None:
        kernel = self._c_fork
        if kernel is not None:
            kernel(self._sctx, e.eid)
            return
        eid = e.eid
        h, _ = self._advance(self._tix[eid], self._lt[eid])
        self._pending_fork[self._tgt[eid]] = h.copy()

    def on_join(self, e: Event) -> None:
        kernel = self._c_join
        if kernel is not None:
            kernel(self._sctx, e.eid)
            return
        eid = e.eid
        ti = self._tix[eid]
        h, p = self._advance(ti, self._lt[eid])
        ci = self._tgt[eid]
        parent = self._pending_fork.pop(ci, None)
        if parent is not None:
            # Child never executed an event: the fork ordering still
            # flows through the (empty) child into the join.
            _k.join_into_list(h, parent)
            if _k.join_into_list_changed(p, parent):
                self._snap_ok[ti] = False
            self._n_joins += 2
        child_h = self._h[ci]
        if child_h is not None:
            _k.join_into_list(h, child_h)
            if _k.join_into_list_changed(p, child_h):
                self._snap_ok[ti] = False
            self._n_joins += 2

    def on_volatile_write(self, e: Event) -> None:
        eid = e.eid
        ti = self._tix[eid]
        t = self._lt[eid]
        h, p = self._advance(ti, t)
        xi = self._tgt[eid]
        writes = self._vol_writes[xi]
        if writes is None:
            writes = self._vol_writes[xi] = DenseSourceClocks()
        reads = self._vol_reads[xi]
        if reads is None:
            reads = self._vol_reads[xi] = DenseSourceClocks()
        for table in (writes, reads):
            table.join_into(h, ti)
            if table.join_into(p, ti) is not None:
                self._snap_ok[ti] = False
        writes.record(ti, eid, t, h.copy())

    def on_volatile_read(self, e: Event) -> None:
        eid = e.eid
        ti = self._tix[eid]
        t = self._lt[eid]
        h, p = self._advance(ti, t)
        xi = self._tgt[eid]
        writes = self._vol_writes[xi]
        if writes is not None and writes.entries:
            writes.join_into(h, ti)
            if writes.join_into(p, ti) is not None:
                self._snap_ok[ti] = False
        reads = self._vol_reads[xi]
        if reads is None:
            reads = self._vol_reads[xi] = DenseSourceClocks()
        reads.record(ti, eid, t, h.copy())


class EpochDCDetector(_EpochDetectorBase):
    """Epoch-optimised DC detector (verdict- and graph-identical to
    :class:`~repro.analysis.dc.DCDetector`).

    On top of the shared fast paths, DC enables the epoch gates (valid
    because DC propagates full post-force snapshots when transitive
    forcing is on) and the single-owner rule (b) skip (valid because a
    DC clock dominates its own thread's past).

    Args:
        build_graph: Build the constraint graph ``G`` alongside the
            clocks (edge-for-edge identical to the reference detector,
            including insertion order, so vindication behaves the same).
        prefilter: Race-candidate variable set for the lockset fast path.
    """

    relation = "DC"
    _use_gates = True

    def __init__(self, build_graph: bool = True,
                 prefilter: Optional[Collection[Target]] = None):
        super().__init__(prefilter)
        self.build_graph = build_graph
        self.graph = ConstraintGraph()
        self._values: List[Optional[List[int]]] = []
        self._queues: List[Optional[DenseLockQueues]] = []
        self._cs_writes: Dict[int, DenseSourceClocks] = {}
        self._cs_reads: Dict[int, DenseSourceClocks] = {}
        self._vol_writes: List[Optional[DenseSourceClocks]] = []
        self._vol_reads: List[Optional[DenseSourceClocks]] = []
        self._pending_fork: Dict[int, Tuple[int, List[int]]] = {}
        self._last_event: List[int] = []
        self._n_graph_edges = 0
        # Graph edges are staged in a flat [src0, dst0, src1, dst1, ...]
        # buffer (shared with the compiled kernels, which append to the
        # same list) and drained into the constraint graph at finish().
        # Every reference edge is inserted while its destination event is
        # being processed and events arrive in order, so the append order
        # *is* the reference insertion order; nothing reads the graph
        # mid-analysis (vindication and finalizers run post-finish).
        self._ebuf: List[int] = []

    def begin_trace(self, trace: Trace) -> None:
        super().begin_trace(trace)
        assert self._ix is not None
        # With graph building off the adjacency lists would never be
        # touched; allocating 2*len(trace) sets is pure per-trace
        # overhead on the no-graph hot path.  Consumers that need the
        # graph (vindication, serve finish) always run with
        # build_graph=True; the empty graph still grows on demand.
        self.graph = (ConstraintGraph(len(trace)) if self.build_graph
                      else ConstraintGraph())
        self._n_graph_edges = 0
        self._values = [None] * self._T
        n_locks = len(self._ix.lock_names)
        self._queues = [None] * n_locks
        self._cs_writes = {}
        self._cs_reads = {}
        n_vols = len(self._ix.vol_names)
        self._vol_writes = [None] * n_vols
        self._vol_reads = [None] * n_vols
        self._pending_fork = {}
        self._last_event = [-1] * self._T
        self._ebuf = []
        ebuf = self._ebuf if self.build_graph else None
        self._bind_fused(
            _k.access_dc, self._values, self._last_event,
            self._pending_fork, self._cs_writes, self._cs_reads, ebuf)
        self._bind_sync(
            (_k.acquire_dc, _k.release_dc, _k.fork_dc, _k.join_dc),
            self._values, self._last_event, self._pending_fork,
            self._queues, self._cs_writes, self._cs_reads, ebuf,
            None, None)

    def _drain_fused(self) -> None:
        fs = self._fs
        self._n_graph_edges += fs[_FS_GRAPH_EDGES]
        fs[_FS_GRAPH_EDGES] = 0
        super()._drain_fused()

    def finish(self) -> RaceReport:
        assert self.report is not None, "begin_trace was never called"
        if self._ebuf:
            _k.drain_edges(self._ebuf, self.graph.add_edge)
        self._drain_fused()
        if self._n_graph_edges:
            counters = self.report.counters
            counters["graph_edges"] = (
                counters.get("graph_edges", 0) + self._n_graph_edges)
            self._n_graph_edges = 0
        return super().finish()

    def _clock_values_of(self, tid: Tid) -> Optional[List[int]]:
        assert self._ix is not None
        idx = self._ix.table.index.get(tid)
        return None if idx is None else self._values[idx]

    # ------------------------------------------------------------------
    # Clock / graph plumbing
    # ------------------------------------------------------------------
    def _advance(self, eid: int, ti: int, t: int) -> List[int]:
        values = self._values[ti]
        if values is None:
            values = self._values[ti] = [0] * self._T
        values[ti] = t
        if self.build_graph:
            prev = self._last_event[ti]
            if prev >= 0:
                ebuf = self._ebuf
                ebuf.append(prev)
                ebuf.append(eid)
        if self._pending_fork:
            pending = self._pending_fork.pop(ti, None)
            if pending is not None:
                fork_eid, parent = pending
                if _k.join_into_list_changed(values, parent):
                    self._snap_ok[ti] = False
                self._n_joins += 1
                self._add_edge(fork_eid, eid)
        self._last_event[ti] = eid
        return values

    def _add_edge(self, src: int, dst: int) -> None:
        if self.build_graph:
            ebuf = self._ebuf
            ebuf.append(src)
            ebuf.append(dst)
            self._n_graph_edges += 1

    def _forced_order_dense(self, prior: Event, e: Event,
                            snapshot: Optional[List[int]]) -> None:
        # The snapshot was already joined by _check_shared; DC's single
        # clock carries it everywhere, so only the graph needs the edge.
        self._add_edge(prior.eid, e.eid)
        self.bump("forced_orders")

    # ------------------------------------------------------------------
    # Dispatch
    # ------------------------------------------------------------------
    def handle(self, event: Event) -> None:
        code = self._codes[event.eid]
        if code <= _WRITE:
            fused = self._c_access
            if fused is None:
                self._on_access(event, code == _WRITE)
            elif fused(self._ctx, event.eid, code == _WRITE, event):
                self._shared_slow(event, code == _WRITE)
        elif code == _ACQ:
            self.on_acquire(event)
        elif code == _REL:
            self.on_release(event)
        elif code == _FORK:
            self.on_fork(event)
        elif code == _JOIN:
            self.on_join(event)
        elif code == _VWR:
            self.on_volatile_write(event)
        elif code == _VRD:
            self.on_volatile_read(event)
        else:
            eid = event.eid
            self._advance(eid, self._tix[eid], self._lt[eid])

    # ------------------------------------------------------------------
    # Accesses
    # ------------------------------------------------------------------
    def _shared_slow(self, e: Event, is_write: bool) -> None:
        # The fused kernel already advanced the clock, staged rule (a),
        # and passed the prefilter; only the SHARED-stage check remains.
        eid = e.eid
        ti = self._tix[eid]
        values = self._values[ti]
        st = self._vars[self._tgt[eid]]
        assert values is not None and st is not None
        self._check_shared(e, ti, self._lt[eid], values, is_write, st)

    def _on_access(self, e: Event, is_write: bool) -> None:
        eid = e.eid
        ti = self._tix[eid]
        t = self._lt[eid]
        # Inlined _advance: one method call per access is measurable.
        values = self._values[ti]
        if values is None:
            values = self._values[ti] = [0] * self._T
        values[ti] = t
        if self.build_graph:
            prev = self._last_event[ti]
            if prev >= 0:
                ebuf = self._ebuf
                ebuf.append(prev)
                ebuf.append(eid)
        if self._pending_fork:
            pending = self._pending_fork.pop(ti, None)
            if pending is not None:
                fork_eid, parent = pending
                if _k.join_into_list_changed(values, parent):
                    self._snap_ok[ti] = False
                self._n_joins += 1
                self._add_edge(fork_eid, eid)
        self._last_event[ti] = eid
        vi = self._tgt[eid]
        held = self._held[eid]
        if held is not None:
            nv = self._nv
            cs_writes = self._cs_writes
            pend = self._pending_vars[ti]
            for li in held:
                key = li * nv + vi
                src = cs_writes.get(key)
                if src is not None:
                    sources = _k.source_join_into(src.entries, values, ti)
                    if sources is not None:
                        self._snap_ok[ti] = False
                        for s in sources:
                            self._add_edge(s, eid)
                if is_write:
                    src = self._cs_reads.get(key)
                    if src is not None:
                        sources = _k.source_join_into(src.entries, values, ti)
                        if sources is not None:
                            self._snap_ok[ti] = False
                            for s in sources:
                                self._add_edge(s, eid)
                cur = pend.get(li)
                if cur is None:
                    cur = pend[li] = (set(), set())
                cur[is_write].add(vi)
        # Inlined race-check entry: prefilter gate and the exclusive
        # (single-accessor) fast path, the overwhelmingly common case.
        cand = self._cand
        if cand is not None:
            if not cand[vi]:
                self._filter_skips += 1
                return
            self._filter_checks += 1
        st = self._vars[vi]
        if st is None:
            st = self._vars[vi] = _VarState(ti)
        if st.owner == ti:
            self._n_excl_fast += 1
            if self.force_order and self.transitive_force:
                if self._snap_ok[ti]:
                    self._n_snap_reuses += 1
                    snap = self._snaps[ti]
                else:
                    snap = values.copy()
                    self._snaps[ti] = snap
                    self._snap_ok[ti] = True
                    self._n_snap_copies += 1
            else:
                snap = None
            if is_write:
                st.xw_time = t
                st.xw_ev = e
                st.xw_snap = snap
            else:
                st.xr_time = t
                st.xr_ev = e
                st.xr_snap = snap
            return
        self._check_shared(e, ti, t, values, is_write, st)

    def on_read(self, e: Event) -> None:
        self._on_access(e, False)

    def on_write(self, e: Event) -> None:
        self._on_access(e, True)

    # ------------------------------------------------------------------
    # Lock operations
    # ------------------------------------------------------------------
    def on_acquire(self, e: Event) -> None:
        kernel = self._c_acquire
        if kernel is not None:
            kernel(self._sctx, e.eid)
            return
        eid = e.eid
        ti = self._tix[eid]
        t = self._lt[eid]
        self._advance(eid, ti, t)
        li = self._tgt[eid]
        queues = self._queues[li]
        if queues is None:
            queues = self._queues[li] = DenseLockQueues()
        queues.on_acquire(ti, t)
        # No synchronisation-order join (DC departs from HB/WCP here);
        # track single-ownership for the rule (b) skip.
        owner = queues.owner
        if owner != ti:
            if owner == -1:
                queues.owner = ti
            else:
                if owner >= 0:
                    self._n_lock_transfers += 1
                queues.owner = -2

    def on_release(self, e: Event) -> None:
        kernel = self._c_release
        if kernel is not None:
            if kernel(self._sctx, e.eid):
                # Streaming traces bypass Trace's construction-time
                # validation, so a release without a matching acquire
                # must surface as a malformed-trace error.
                raise MalformedTraceError(
                    f"{e}: releases lock {e.target!r} with no matching "
                    f"acquire by thread {e.tid!r}",
                    event_index=e.eid,
                )
            return
        eid = e.eid
        ti = self._tix[eid]
        t = self._lt[eid]
        values = self._advance(eid, ti, t)
        li = self._tgt[eid]
        queues = self._queues[li]
        if queues is None or queues.open_ti != ti:
            # Streaming traces bypass Trace's construction-time
            # validation, so a release without a matching acquire must
            # surface as a malformed-trace error, not a KeyError.
            raise MalformedTraceError(
                f"{e}: releases lock {e.target!r} with no matching acquire "
                f"by thread {e.tid!r}",
                event_index=e.eid,
            )
        if queues.owner == ti:
            # Ownership fast path: every record is the releasing
            # thread's own; its clock dominates its own past, so the
            # reference walk would consume them all silently and join
            # nothing. The cursors catch up lazily if the lock is ever
            # shared.
            self._n_rule_b_skips += 1
        else:
            sources = queues.apply_rule_b(ti, values)
            if sources is not None:
                self._snap_ok[ti] = False
                for s in sources:
                    self._add_edge(s, eid)
        snapshot = values.copy()
        pending = self._pending_vars[ti].pop(li, None)
        if pending is not None:
            read_vars, written_vars = pending
            nv = self._nv
            for vi in written_vars:
                table = self._cs_writes.get(li * nv + vi)
                if table is None:
                    table = self._cs_writes[li * nv + vi] = DenseSourceClocks()
                table.record(ti, eid, t, snapshot)
            for vi in read_vars:
                table = self._cs_reads.get(li * nv + vi)
                if table is None:
                    table = self._cs_reads[li * nv + vi] = DenseSourceClocks()
                table.record(ti, eid, t, snapshot)
        queues.on_release(eid, t, snapshot)

    # ------------------------------------------------------------------
    # Fork / join / volatiles: direct DC ordering
    # ------------------------------------------------------------------
    def on_fork(self, e: Event) -> None:
        kernel = self._c_fork
        if kernel is not None:
            kernel(self._sctx, e.eid)
            return
        eid = e.eid
        ti = self._tix[eid]
        values = self._advance(eid, ti, self._lt[eid])
        self._pending_fork[self._tgt[eid]] = (eid, values.copy())

    def on_join(self, e: Event) -> None:
        kernel = self._c_join
        if kernel is not None:
            kernel(self._sctx, e.eid)
            return
        eid = e.eid
        ti = self._tix[eid]
        values = self._advance(eid, ti, self._lt[eid])
        ci = self._tgt[eid]
        pending = self._pending_fork.pop(ci, None)
        if pending is not None:
            # The child never executed an event: the fork ordering still
            # flows through the (empty) child into the join.
            fork_eid, parent = pending
            if _k.join_into_list_changed(values, parent):
                self._snap_ok[ti] = False
            self._n_joins += 1
            self._add_edge(fork_eid, eid)
        child_values = self._values[ci]
        if child_values is not None:
            if _k.join_into_list_changed(values, child_values):
                self._snap_ok[ti] = False
            self._n_joins += 1
            child_last = self._last_event[ci]
            if child_last >= 0:
                self._add_edge(child_last, eid)

    def on_volatile_write(self, e: Event) -> None:
        eid = e.eid
        ti = self._tix[eid]
        t = self._lt[eid]
        values = self._advance(eid, ti, t)
        xi = self._tgt[eid]
        writes = self._vol_writes[xi]
        if writes is None:
            writes = self._vol_writes[xi] = DenseSourceClocks()
        reads = self._vol_reads[xi]
        if reads is None:
            reads = self._vol_reads[xi] = DenseSourceClocks()
        for table in (writes, reads):
            sources = table.join_into(values, ti)
            if sources is not None:
                self._snap_ok[ti] = False
                for s in sources:
                    self._add_edge(s, eid)
        writes.record(ti, eid, t, values.copy())

    def on_volatile_read(self, e: Event) -> None:
        eid = e.eid
        ti = self._tix[eid]
        t = self._lt[eid]
        values = self._advance(eid, ti, t)
        xi = self._tgt[eid]
        writes = self._vol_writes[xi]
        if writes is not None and writes.entries:
            sources = writes.join_into(values, ti)
            if sources is not None:
                self._snap_ok[ti] = False
                for s in sources:
                    self._add_edge(s, eid)
        reads = self._vol_reads[xi]
        if reads is None:
            reads = self._vol_reads[xi] = DenseSourceClocks()
        reads.record(ti, eid, t, values.copy())

"""Weak-causally-precedes (WCP) analysis (Definition 2.6; Kini et al.).

WCP shares rules (a) and (b) with DC but additionally composes with HB
on both sides (rule (c)), which makes it sound (modulo predictable
deadlocks) but incomplete. The online algorithm therefore tracks *two*
clocks per thread:

* ``H`` — the plain happens-before clock (program order, lock
  synchronisation order, fork/join, volatiles);
* ``P`` — the WCP clock: the events WCP-ordered before the thread's
  next event.

The compositions with HB appear in two places:

* *right* composition (``e ≺WCP e'' ≺HB e'``): ``P`` flows along every
  HB edge — the acquirer joins the lock's last-release ``P`` clock,
  fork/join and volatile edges join ``P`` alongside ``H``;
* *left* composition (``e ≺HB e'' ≺WCP e'``): when rules (a)/(b)
  establish ``r1 ≺WCP e2``, the clock joined into ``P`` is the *HB*
  clock snapshot taken at ``r1``, so everything HB-before ``r1``
  becomes WCP-before ``e2``.

A WCP-race is a conflicting pair unordered by WCP ∪ PO; since the race
check only consults other threads' components, ``P`` never carries the
thread's own program order.
"""

from __future__ import annotations

from typing import Collection, Dict, Optional, Set, Tuple

from repro.core.events import Event, Target, Tid
from repro.core.trace import Trace
from repro.core.vectorclock import VectorClock
from repro.analysis.base import Detector
from repro.analysis.sync_structures import (LockQueues, SourceClocks,
                                            _retire_source_tables)


class WCPDetector(Detector):
    """Online WCP analysis (vector clocks, linear in trace length)."""

    relation = "WCP"

    def __init__(self, prefilter: Optional[Collection[Target]] = None,
                 fast_vc: bool = False):
        super().__init__(prefilter, fast_vc=fast_vc)
        self._h: Dict[Tid, VectorClock] = {}
        self._p: Dict[Tid, VectorClock] = {}
        self._lock_h: Dict[Target, VectorClock] = {}
        self._lock_p: Dict[Target, VectorClock] = {}
        self._queues: Dict[Target, LockQueues] = {}
        self._cs_writes: Dict[Tuple[Target, Target], SourceClocks] = {}
        self._cs_reads: Dict[Tuple[Target, Target], SourceClocks] = {}
        self._vol_writes: Dict[Target, SourceClocks] = {}
        self._vol_reads: Dict[Target, SourceClocks] = {}
        self._pending_vars: Dict[Tid, Dict[Target, Tuple[Set[Target], Set[Target]]]] = {}
        self._pending_fork: Dict[Tid, Tuple[VectorClock, VectorClock]] = {}

    def begin_trace(self, trace: Trace) -> None:
        super().begin_trace(trace)
        self._h = {}
        self._p = {}
        self._lock_h = {}
        self._lock_p = {}
        self._queues = {}
        self._cs_writes = {}
        self._cs_reads = {}
        self._vol_writes = {}
        self._vol_reads = {}
        self._pending_vars = {}
        self._pending_fork = {}

    # ------------------------------------------------------------------
    # Clock plumbing
    # ------------------------------------------------------------------
    def _advance(self, e: Event) -> Tuple[VectorClock, VectorClock]:
        """Advance the thread's (H, P) clocks to this event."""
        h = self._h.get(e.tid)
        if h is None:
            h = self._new_clock()
            self._h[e.tid] = h
            self._p[e.tid] = self._new_clock()
        p = self._p[e.tid]
        assert self.trace is not None
        h.advance(e.tid, self.trace.local_time[e.eid])
        # P deliberately does not carry the thread's own program order;
        # the race check treats same-thread priors as PO-ordered.
        pending = self._pending_fork.pop(e.tid, None)
        if pending is not None:
            parent_h, parent_p = pending
            h.join(parent_h)
            p.join(parent_p)
            self._n_joins += 2
        return h, p

    # ------------------------------------------------------------------
    # Accesses
    # ------------------------------------------------------------------
    def _rule_a(self, e: Event, p: VectorClock, is_write: bool) -> None:
        assert self.trace is not None
        held = self.trace.held_locks(e)
        if not held:
            return
        var = e.target
        for lock in held:
            writes = self._cs_writes.get((lock, var))
            if writes:
                writes.join_into(p, e.tid)
            if is_write:
                reads = self._cs_reads.get((lock, var))
                if reads:
                    reads.join_into(p, e.tid)
            pending = self._pending_vars.setdefault(e.tid, {}).get(lock)
            if pending is None:
                pending = (set(), set())
                self._pending_vars[e.tid][lock] = pending
            pending[1 if is_write else 0].add(var)

    def on_read(self, e: Event) -> None:
        _, p = self._advance(e)
        self._rule_a(e, p, is_write=False)
        self.check_access(e, p)

    def on_write(self, e: Event) -> None:
        _, p = self._advance(e)
        self._rule_a(e, p, is_write=True)
        self.check_access(e, p)

    # ------------------------------------------------------------------
    # Lock operations
    # ------------------------------------------------------------------
    def on_acquire(self, e: Event) -> None:
        h, p = self._advance(e)
        lock_h = self._lock_h.get(e.target)
        if lock_h is not None:
            h.join(lock_h)
            p.join(self._lock_p[e.target])  # right HB composition
            self._n_joins += 2
        queues = self._queues.get(e.target)
        if queues is None:
            queues = LockQueues()
            self._queues[e.target] = queues
        assert self.trace is not None
        queues.on_acquire(e.tid, self.trace.local_time[e.eid])

    def on_release(self, e: Event) -> None:
        h, p = self._advance(e)
        assert self.trace is not None
        queues = self._queues[e.target]
        queues.apply_rule_b(e.tid, p)  # joins H-at-release snapshots into P
        h_snapshot = h.copy()
        local_time = self.trace.local_time[e.eid]
        pending = self._pending_vars.get(e.tid, {}).pop(e.target, None)
        if pending is not None:
            read_vars, written_vars = pending
            for var in written_vars:
                table = self._cs_writes.setdefault((e.target, var), SourceClocks())
                table.record(e.tid, e.eid, local_time, h_snapshot)
            for var in read_vars:
                table = self._cs_reads.setdefault((e.target, var), SourceClocks())
                table.record(e.tid, e.eid, local_time, h_snapshot)
        queues.on_release(e.eid, local_time, h_snapshot)
        self._lock_h[e.target] = h_snapshot
        self._lock_p[e.target] = p.copy()

    # ------------------------------------------------------------------
    # Fork / join / volatiles.
    #
    # These are *hard* orderings — no correct reordering can undo them —
    # so they are base WCP edges, not merely HB edges. By rule (c)'s left
    # composition, everything HB-before the edge's source is WCP-before
    # its target, hence the joins below use H snapshots (per source
    # thread for volatiles, to avoid composing a thread's own program
    # order into its P clock).
    # ------------------------------------------------------------------
    def on_fork(self, e: Event) -> None:
        h, _ = self._advance(e)
        snapshot = h.copy()
        self._pending_fork[e.target] = (snapshot, snapshot)

    def on_join(self, e: Event) -> None:
        h, p = self._advance(e)
        pending = self._pending_fork.pop(e.target, None)
        if pending is not None:
            # Child never executed an event: the fork ordering still
            # flows through the (empty) child into the join.
            parent_h, parent_p = pending
            h.join(parent_h)
            p.join(parent_p)
            self._n_joins += 2
        child_h = self._h.get(e.target)
        if child_h is not None:
            h.join(child_h)
            p.join(child_h)
            self._n_joins += 2

    def on_volatile_write(self, e: Event) -> None:
        h, p = self._advance(e)
        assert self.trace is not None
        writes = self._vol_writes.setdefault(e.target, SourceClocks())
        reads = self._vol_reads.setdefault(e.target, SourceClocks())
        for table in (writes, reads):
            table.join_into(h, e.tid)
            table.join_into(p, e.tid)
        writes.record(e.tid, e.eid, self.trace.local_time[e.eid], h.copy())

    def on_volatile_read(self, e: Event) -> None:
        h, p = self._advance(e)
        assert self.trace is not None
        writes = self._vol_writes.get(e.target)
        if writes:
            writes.join_into(h, e.tid)
            writes.join_into(p, e.tid)
        reads = self._vol_reads.setdefault(e.target, SourceClocks())
        reads.record(e.tid, e.eid, self.trace.local_time[e.eid], h.copy())

    def on_begin(self, e: Event) -> None:
        self._advance(e)

    def on_end(self, e: Event) -> None:
        self._advance(e)

    # ------------------------------------------------------------------
    # Forced race edges
    # ------------------------------------------------------------------
    def on_forced_order(self, prior: Event, e: Event,
                        snapshot: Optional[VectorClock]) -> None:
        """Mirror a forced race edge into the H clock.

        A forced ordering is as hard as fork/join/volatile edges: it is
        an ordering every later event must respect, not something a
        reordering could undo. Joining it into P alone is not enough —
        WCP's propagation channels (release / volatile / rule (a)/(b)
        records) carry *H* snapshots, so a P-only forced edge would be
        dropped the first time the ordering has to flow through another
        thread (e.g. a volatile rd→wr chain), leaving a later access
        WCP-racing where DC, whose single clock propagates everywhere,
        is ordered — breaking WCP ⊆ DC racing-set nesting.

        HB ⊆ WCP nesting is preserved: if the forced pair was HB-ordered
        the H clock already covers ``prior`` (and hence its snapshot),
        so the joins below are no-ops; if it was HB-unordered the HB
        detector reported the same race and forced a superset (its full
        clock) into its own clock.
        """
        h = self._h[e.tid]
        assert self.trace is not None
        prior_time = self.trace.local_time[prior.eid]
        # Max semantics: rules (a)/(b) join H snapshots into P only, so
        # P can transiently exceed H on a component; never lower H.
        if h.get(prior.tid) < prior_time:
            h.set(prior.tid, prior_time)
        if self.transitive_force and snapshot is not None:
            h.join(snapshot)
            self._n_joins += 1

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def ordered_to_current(self, prior: Event, tid: Tid) -> bool:
        if prior.tid == tid:
            return True
        p = self._p.get(tid)
        assert self.trace is not None
        return p is not None and p.get(prior.tid) >= self.trace.local_time[prior.eid]

    def clock_of(self, tid: Tid) -> Optional[VectorClock]:
        """The thread's current WCP clock (None before its first event)."""
        return self._p.get(tid)

    # ------------------------------------------------------------------
    # Streaming metadata GC (repro.serve)
    # ------------------------------------------------------------------
    def gc_cover_clocks(self, tid: Tid):
        # Both clocks must cover an entry before it can retire: rule
        # (a)/(b) and volatile sources join into P *and* H, and a forked
        # child's initial P is the parent's H snapshot.
        h = self._h.get(tid)
        if h is not None:
            return [h, self._p[tid]]
        pending = self._pending_fork.get(tid)
        return [] if pending is None else list(pending)

    def gc_collect(self, floors) -> int:
        retired = super().gc_collect(floors)
        for tables in (self._cs_writes, self._cs_reads,
                       self._vol_writes, self._vol_reads):
            retired += _retire_source_tables(tables, floors)
        for lock in list(self._queues):
            queues = self._queues[lock]
            # A live thread's own queue records are real rule-(b) joins
            # for WCP (P lacks own program order), so they retire only
            # once the thread's P clock already dominates the recorded
            # release snapshot — the own_clock argument below.
            retired += queues.gc_retire(floors, self._p.get)
            if not queues.records and not queues.cursors \
                    and queues.open_record is None:
                del self._queues[lock]
        return retired

    def gc_drop_thread(self, tid: Tid) -> None:
        super().gc_drop_thread(tid)
        self._h.pop(tid, None)
        self._p.pop(tid, None)
        self._pending_fork.pop(tid, None)
        self._pending_vars.pop(tid, None)

"""FastTrack-style epoch-optimised happens-before detection.

RoadRunner — the paper's implementation platform — is also the home of
FastTrack [Flanagan & Freund 2009], whose insight is that a variable's
access history rarely needs a full vector clock: when the last writes
(or reads) are totally ordered, a single *epoch* ``c@t`` suffices.

This detector is an extension over the paper's HB analysis: it reports
the same races as :class:`~repro.analysis.hb.HBDetector` (the same racy
access events) while doing O(1) work on the common same-epoch and
ordered-access fast paths. It reuses the HB detector's synchronisation
machinery (locks, fork/join, volatiles) and replaces only the per-access
metadata.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Collection, Dict, Optional, Tuple

from repro.core.events import Event, Target, Tid
from repro.core.trace import Trace
from repro.core.vectorclock import Epoch
from repro.analysis.hb import HBDetector
from repro.analysis.races import DynamicRace, RaceReport


@dataclass
class _VarState:
    """FastTrack metadata for one variable."""

    write_epoch: Optional[Epoch] = None
    write_event: Optional[Event] = None
    #: Either a single read epoch (with its event) or, after concurrent
    #: reads, a per-thread map of (time, event) — the "read share" state.
    read_epoch: Optional[Epoch] = None
    read_event: Optional[Event] = None
    read_map: Dict[Tid, Tuple[int, Event]] = field(default_factory=dict)

    @property
    def shared(self) -> bool:
        return bool(self.read_map)


class FastTrackDetector(HBDetector):
    """Epoch-based HB race detector (FastTrack)."""

    relation = "HB/FastTrack"

    def __init__(self, prefilter: Optional[Collection[Target]] = None,
                 fast_vc: bool = False):
        super().__init__(prefilter, fast_vc=fast_vc)
        self._vars: Dict[Target, _VarState] = {}
        #: Same-epoch write fast-path hits — FastTrack's headline O(1)
        #: case. A plain int on the per-event hot path; folded into the
        #: report counters (and the metrics registry) at :meth:`finish`.
        self._n_epoch_fast = 0

    def begin_trace(self, trace: Trace) -> None:
        super().begin_trace(trace)
        self._vars = {}
        self._n_epoch_fast = 0

    def finish(self) -> RaceReport:
        assert self.report is not None, "begin_trace was never called"
        if self._n_epoch_fast:
            counters = self.report.counters
            counters["ft_epoch_fast_hits"] = (
                counters.get("ft_epoch_fast_hits", 0) + self._n_epoch_fast)
            self._n_epoch_fast = 0
        return super().finish()

    # ------------------------------------------------------------------
    # Access handling (replaces the vector-clock history of the base)
    # ------------------------------------------------------------------
    def _report(self, prior: Optional[Event], e: Event) -> None:
        if prior is None:
            return
        assert self.report is not None
        self.report.races.append(
            DynamicRace(first=prior, second=e, relation="HB"))
        self.racing_at.setdefault(e.eid, frozenset())
        self.racing_at[e.eid] = self.racing_at[e.eid] | {prior.eid}

    def _filtered(self, e: Event) -> bool:
        """Lockset fast path: FastTrack bypasses ``check_access``, so the
        pre-filter gate lives here (after the clock advance, which is
        relation bookkeeping and must always run)."""
        if self.prefilter is None:
            return False
        if e.target not in self.prefilter:
            self._filter_skips += 1
            return True
        self._filter_checks += 1
        return False

    def on_read(self, e: Event) -> None:
        clock = self._advance(e)
        if self._filtered(e):
            return
        state = self._vars.setdefault(e.target, _VarState())
        assert self.trace is not None
        my_time = self.trace.local_time[e.eid]
        if state.write_epoch is not None and not state.write_epoch.happens_before(clock):
            self._report(state.write_event, e)
            self.bump("ft_write_read_races")
            # Force order past the race, as the paper's analyses do.
            clock.set(state.write_epoch.tid,
                      max(clock.get(state.write_epoch.tid), state.write_epoch.time))
        if state.shared:
            state.read_map[e.tid] = (my_time, e)
        elif state.read_epoch is None or state.read_epoch.happens_before(clock):
            state.read_epoch = Epoch(my_time, e.tid)
            state.read_event = e
        else:
            # Concurrent reads: inflate the epoch into the shared map.
            assert state.read_event is not None
            state.read_map = {
                state.read_epoch.tid: (state.read_epoch.time, state.read_event),
                e.tid: (my_time, e),
            }
            state.read_epoch = None
            state.read_event = None
            self.bump("ft_read_inflations")

    def on_write(self, e: Event) -> None:
        clock = self._advance(e)
        if self._filtered(e):
            return
        state = self._vars.setdefault(e.target, _VarState())
        assert self.trace is not None
        my_time = self.trace.local_time[e.eid]
        if (state.write_epoch is not None
                and state.write_epoch.tid == e.tid
                and state.write_epoch.time == clock.get(e.tid)):
            self._n_epoch_fast += 1
            return  # same-epoch fast path
        racing_priors = []
        if state.write_epoch is not None and not state.write_epoch.happens_before(clock):
            racing_priors.append((state.write_epoch, state.write_event))
        if state.shared:
            for tid, (time, event) in state.read_map.items():
                if tid != e.tid and time > clock.get(tid):
                    racing_priors.append((Epoch(time, tid), event))
            state.read_map = {}
        elif state.read_epoch is not None:
            if (state.read_epoch.tid != e.tid
                    and not state.read_epoch.happens_before(clock)):
                racing_priors.append((state.read_epoch, state.read_event))
        if racing_priors:
            # Report the shortest race, mirroring the base detector.
            racing_priors.sort(key=lambda pair: pair[1].eid if pair[1] else -1)
            self._report(racing_priors[-1][1], e)
            self.bump("ft_write_races")
            for epoch, _ in racing_priors:
                clock.set(epoch.tid, max(clock.get(epoch.tid), epoch.time))
        state.write_epoch = Epoch(my_time, e.tid)
        state.write_event = e

"""Happens-before (HB) analysis.

Tracks Definition 2.5's HB relation with vector clocks (Djit+-style):
program order, lock release→acquire synchronisation order, fork/join
edges, and volatile ordering edges, closed transitively. Conflicting
accesses unordered by HB are HB-races.

HB is the baseline relation: it is sound but predicts the fewest races
(every HB-race is a WCP-race is a DC-race).
"""

from __future__ import annotations

from typing import Collection, Dict, Optional

from repro.core.events import Event, Target, Tid
from repro.core.trace import Trace
from repro.core.vectorclock import VectorClock
from repro.analysis.base import Detector


class HBDetector(Detector):
    """Online vector-clock happens-before race detector."""

    relation = "HB"

    def __init__(self, prefilter: Optional[Collection[Target]] = None,
                 fast_vc: bool = False):
        super().__init__(prefilter, fast_vc=fast_vc)
        self._clocks: Dict[Tid, VectorClock] = {}
        self._lock_clocks: Dict[Target, VectorClock] = {}
        self._volatile_writes: Dict[Target, VectorClock] = {}
        self._volatile_reads: Dict[Target, VectorClock] = {}
        self._pending_fork: Dict[Tid, VectorClock] = {}

    def begin_trace(self, trace: Trace) -> None:
        super().begin_trace(trace)
        self._clocks = {}
        self._lock_clocks = {}
        self._volatile_writes = {}
        self._volatile_reads = {}
        self._pending_fork = {}

    # ------------------------------------------------------------------
    # Clock plumbing
    # ------------------------------------------------------------------
    def _advance(self, e: Event) -> VectorClock:
        """Advance the executing thread's clock to this event and apply any
        pending fork edge. Returns the thread's clock."""
        clock = self._clocks.get(e.tid)
        if clock is None:
            clock = self._new_clock()
            self._clocks[e.tid] = clock
        assert self.trace is not None
        clock.advance(e.tid, self.trace.local_time[e.eid])
        parent = self._pending_fork.pop(e.tid, None)
        if parent is not None:
            clock.join(parent)
            self._n_joins += 1
        return clock

    # ------------------------------------------------------------------
    # Event hooks
    # ------------------------------------------------------------------
    def on_read(self, e: Event) -> None:
        clock = self._advance(e)
        self.check_access(e, clock)

    def on_write(self, e: Event) -> None:
        clock = self._advance(e)
        self.check_access(e, clock)

    def on_acquire(self, e: Event) -> None:
        clock = self._advance(e)
        released = self._lock_clocks.get(e.target)
        if released is not None:
            clock.join(released)
            self._n_joins += 1

    def on_release(self, e: Event) -> None:
        clock = self._advance(e)
        self._lock_clocks[e.target] = clock.copy()

    def on_fork(self, e: Event) -> None:
        clock = self._advance(e)
        self._pending_fork[e.target] = clock.copy()

    def on_join(self, e: Event) -> None:
        clock = self._advance(e)
        pending = self._pending_fork.pop(e.target, None)
        if pending is not None:
            # Child never executed an event: the fork ordering still
            # flows through the (empty) child into the join.
            clock.join(pending)
            self._n_joins += 1
        child = self._clocks.get(e.target)
        if child is not None:
            clock.join(child)
            self._n_joins += 1

    def on_volatile_write(self, e: Event) -> None:
        clock = self._advance(e)
        for table in (self._volatile_writes, self._volatile_reads):
            prior = table.get(e.target)
            if prior is not None:
                clock.join(prior)
        snapshot = clock.copy()
        writes = self._volatile_writes.setdefault(e.target, self._new_clock())
        writes.join(snapshot)

    def on_volatile_read(self, e: Event) -> None:
        clock = self._advance(e)
        prior = self._volatile_writes.get(e.target)
        if prior is not None:
            clock.join(prior)
        reads = self._volatile_reads.setdefault(e.target, self._new_clock())
        reads.join(clock)

    def on_begin(self, e: Event) -> None:
        self._advance(e)

    def on_end(self, e: Event) -> None:
        self._advance(e)

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def ordered_to_current(self, prior: Event, tid: Tid) -> bool:
        if prior.tid == tid:
            return True
        clock = self._clocks.get(tid)
        assert self.trace is not None
        return clock is not None and clock.get(prior.tid) >= self.trace.local_time[prior.eid]

    def clock_of(self, tid: Tid) -> Optional[VectorClock]:
        """The thread's current HB clock (None if the thread has no events yet)."""
        return self._clocks.get(tid)

    # ------------------------------------------------------------------
    # Streaming metadata GC (repro.serve)
    # ------------------------------------------------------------------
    def gc_cover_clocks(self, tid: Tid):
        clock = self._clocks.get(tid)
        if clock is not None:
            return [clock]
        pending = self._pending_fork.get(tid)
        return [] if pending is None else [pending]

    def gc_drop_thread(self, tid: Tid) -> None:
        super().gc_drop_thread(tid)
        self._clocks.pop(tid, None)
        self._pending_fork.pop(tid, None)

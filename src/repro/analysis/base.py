"""Detector framework shared by the HB, WCP, and DC analyses.

Every online analysis processes a trace event-by-event, maintaining a
per-thread vector clock whose meaning is "the events ordered before this
thread's next event" under the analysis's relation (∪ PO for relations
that do not already include program order). The race check and the
access-history bookkeeping are identical across analyses, so they live
here; subclasses supply the clock updates that define the relation.

Following the paper's implementation notes (Section 6.1):

* at an access, the detector records at most one dynamic race — the
  "shortest" one, i.e. against the racing prior access with maximal
  timestamp;
* after reporting a race between ``e1`` and ``e2``, the detector forces
  ``e1 ≺ e2`` so later races are not dependent on earlier ones.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field
from typing import Collection, Dict, FrozenSet, List, Optional, Set, Tuple

from repro import obs
from repro.core import kernels as _k
from repro.core.events import Event, EventKind, Target, Tid
from repro.core.trace import Trace
from repro.core.vectorclock import VectorClock
from repro.core.vectorclock_dense import DenseVectorClock, TidTable
from repro.analysis.races import DynamicRace, RaceReport
from repro.obs.metrics import DEFAULT_SIZE_BUCKETS


@dataclass
class AccessHistory:
    """Last read and last write of one variable, per thread.

    Each entry carries the analysis clock snapshot taken at the access,
    so that forcing the order of a detected race can join the earlier
    access's *full* clock — making forced ordering transitive, which is
    what actually prevents later races from being dependent on earlier
    ones (Section 6.1, "Handling DC-races").
    """

    last_write: Dict[Tid, Tuple[Event, Optional[VectorClock]]] = field(default_factory=dict)
    last_read: Dict[Tid, Tuple[Event, Optional[VectorClock]]] = field(default_factory=dict)
    #: Every thread that has accessed the variable so far. While this
    #: stays within a single thread no racing prior can exist, so
    #: :meth:`Detector.check_access` skips the scan outright.
    tids: Set[Tid] = field(default_factory=set)


class GCFloors:
    """Retirement floors for streaming metadata GC (:mod:`repro.serve`).

    ``covers`` maps every *live* thread ``v`` (one that may still produce
    events: started and neither ended nor joined, or forked and not yet
    begun) to its *cover*: a component-wise lower bound on every clock
    ``v`` will ever use to observe other threads under the detector's
    relation. For HB that is ``C_v``; for WCP the component-wise min of
    ``H_v`` and ``P_v`` (a forked child's initial ``P`` is the parent's
    ``H`` snapshot, so both must cover); for DC the thread clock. A
    pending forked child's cover is its stored fork snapshot, which
    lower-bounds its future clocks.

    A metadata entry attributed to thread ``u`` at thread-local time
    ``t`` is retirable iff ``t <= floor(u)`` — every live thread other
    than ``u`` already has ``u``'s component at ``>= t``, so no future
    race check or rule-(a)/(b) join can observe the entry: race scans
    see ``local_time <= clock.get(u)`` (not racing) and source-clock
    joins see ``target.get(u) >= t`` (skipped). Retiring it is therefore
    invisible to verdicts, racing sets, counters, and the DC edge list —
    the property the GC differential tests pin.

    Soundness requires a *fork-closed* stream: a thread that appeared
    out of nowhere would start with an empty clock and could race with
    already-retired entries. The serve session enforces that for
    GC-enabled sessions.
    """

    __slots__ = ("_covers", "_dead", "_floors")

    def __init__(self, covers: Dict[Tid, Dict[Tid, int]],
                 dead: Collection[Tid]):
        self._covers = covers
        self._dead = frozenset(dead)
        self._floors: Dict[Tid, float] = {}

    def floor(self, u: Tid) -> float:
        """Min of every live thread's (other than ``u``) cover of ``u``;
        ``+inf`` when no other live thread exists."""
        f = self._floors.get(u)
        if f is None:
            f = min((cover.get(u, 0) for v, cover in self._covers.items()
                     if v != u), default=float("inf"))
            self._floors[u] = f
        return f

    def is_dead(self, u: Tid) -> bool:
        """Can thread ``u`` produce no further events (ended or joined)?"""
        return u in self._dead


class Detector(abc.ABC):
    """Base class for online race detectors.

    Subclasses set :attr:`relation` and implement the event hooks that
    define the relation's clock updates. The base class provides event
    dispatch, the access history, the race check, and race recording.

    Args:
        prefilter: When given, the set of *race-candidate* variables
            from the lockset pre-analysis
            (:func:`repro.static.lockset.analyze_locksets`); the race
            check and access-history bookkeeping are skipped for every
            other variable. The verdicts over-approximate race
            candidates, so the filter cannot change which races are
            reported — it only removes provably fruitless work. Clock
            updates (including rule (a) critical-section recording)
            always run: they define the relation for *other* variables.
        fast_vc: Back every clock this detector allocates with the
            dense array kernel
            (:class:`~repro.core.vectorclock_dense.DenseVectorClock`
            over a per-trace :class:`~repro.core.vectorclock_dense.TidTable`)
            instead of the dict-backed :class:`VectorClock`. The two
            representations are value-equivalent, so verdicts are
            identical; the dense one trades generality for constant
            factors.
    """

    #: Relation name, e.g. ``"HB"``; set by subclasses.
    relation: str = "?"

    def __init__(self, prefilter: Optional[Collection[Target]] = None,
                 fast_vc: bool = False):
        self.trace: Optional[Trace] = None
        self.report: Optional[RaceReport] = None
        self._history: Dict[Target, AccessHistory] = {}
        #: Race-candidate variables, or None to race-check every access.
        self.prefilter: Optional[FrozenSet[Target]] = (
            None if prefilter is None else frozenset(prefilter))
        #: Allocate dense array-backed clocks instead of dict-backed ones.
        self.fast_vc = bool(fast_vc)
        #: The tid-interning table shared by this run's dense clocks
        #: (rebuilt per trace; None while dict-backed clocks are in use).
        self._tid_table: Optional[TidTable] = None
        self._filter_skips = 0
        self._filter_checks = 0
        #: Per-thread memo of the last clock snapshot taken by
        #: :meth:`check_access`: ``tid -> (clock object, snapshot,
        #: version at copy time)``. While the clock object is unchanged
        #: and its :attr:`~repro.core.vectorclock.VectorClock.version`
        #: still matches, the previous snapshot is reused instead of
        #: copied again (self-advances do not bump the version; see
        #: ``VectorClock.advance`` for why that is exact).
        self._snap_cache: Dict[Tid, Tuple[VectorClock, VectorClock, int]] = {}
        #: Vector-clock joins performed (batched into the metrics
        #: registry at :meth:`finish`; a plain int so the per-join cost
        #: is one increment whether or not observability is on).
        self._n_joins = 0
        #: After reporting a race, force the pair's ordering (Section 6.1).
        #: The differential tests disable this to compare the detector's
        #: clocks against the pure relation computed by the reference
        #: engines.
        self.force_order = True
        #: Transitive forcing (default): join the earlier access's clock
        #: snapshot, so later races can never be dependent on earlier
        #: ones — with this on, dependent false DC-races are *suppressed*
        #: (the paper's experience: every reported DC-race was true).
        #: With it off, forcing bumps only the racing component (as an
        #: epoch-based implementation would); dependent DC-races then
        #: surface and VindicateRace refutes them with constraint cycles.
        self.transitive_force = True
        #: For each access event that raced: the eids of *all* racing prior
        #: accesses (not just the recorded shortest one). The combined
        #: Vindicator pipeline uses this to decide whether a DC-race pair
        #: is also unordered under HB / WCP.
        self.racing_at: Dict[int, frozenset] = {}

    # ------------------------------------------------------------------
    # Driving
    # ------------------------------------------------------------------
    def analyze(self, trace: Trace) -> RaceReport:
        """Run the detector over ``trace`` and return its race report."""
        with obs.span(f"analysis.{self.metric_label()}") as sp:
            # Which kernel implementation ran is part of any perf
            # profile's identity; stamp it so A/B traces self-describe.
            sp.tag("kernels.backend", _k.active_backend())
            self.begin_trace(trace)
            for event in trace:
                self.handle(event)
            report = self.finish()
            sp.annotate("events", len(trace))
            sp.annotate("races", len(report.races))
        return report

    def metric_label(self) -> str:
        """This detector's metric-name segment (``"HB/FastTrack"`` →
        ``"hb_fasttrack"``)."""
        return self.relation.lower().replace("/", "_")

    def begin_trace(self, trace: Trace) -> None:
        """Reset state and bind the detector to ``trace`` (streaming API:
        call this, then :meth:`handle` per event, then :meth:`finish`)."""
        self.trace = trace
        self.report = RaceReport(relation=self.relation)
        self._history = {}
        self.racing_at = {}
        self._filter_skips = 0
        self._filter_checks = 0
        self._snap_cache = {}
        self._n_joins = 0
        self._tid_table = TidTable(trace.threads) if self.fast_vc else None

    def _new_clock(self) -> VectorClock:
        """A fresh zero clock in this run's selected representation."""
        if self._tid_table is not None:
            # DenseVectorClock duck-types the VectorClock surface the
            # detectors use (get/set/advance/join/copy/version).
            return DenseVectorClock(self._tid_table)  # type: ignore[return-value]
        return VectorClock()

    def finish(self) -> RaceReport:
        """Return the report for the trace processed so far."""
        assert self.report is not None, "begin_trace was never called"
        if self.prefilter is not None:
            self.report.counters["lockset_skipped"] = self._filter_skips
            self.report.counters["lockset_checked"] = self._filter_checks
        reg = obs.metrics()
        if reg.enabled:
            self._publish(reg)
        return self.report

    def _publish(self, reg: obs.AnyRegistry) -> None:
        """Batch this trace's statistics into the live metrics registry.

        Called from :meth:`finish` only when observability is enabled,
        so the per-event dispatch and race-check loops carry no
        instrumentation at all: events processed come from the trace
        length, races and distances from the report, joins from the
        :attr:`_n_joins` batch counter, and the report counters are
        mirrored so there is one way to count things.
        """
        assert self.report is not None
        label = self.metric_label()
        if self.trace is not None:
            reg.add(f"analysis.{label}.events", len(self.trace))
        reg.add(f"analysis.{label}.races", len(self.report.races))
        reg.add(f"analysis.{label}.vc_joins", self._n_joins)
        for name, value in self.report.counters.items():
            reg.add(f"analysis.{label}.{name}", value)
        if self.report.races:
            hist = reg.histogram(f"analysis.{label}.race_distance",
                                 DEFAULT_SIZE_BUCKETS)
            for race in self.report.races:
                hist.observe(race.second.eid - race.first.eid)

    def handle(self, event: Event) -> None:
        """Dispatch one event to its kind-specific hook."""
        kind = event.kind
        if kind is EventKind.READ:
            self.on_read(event)
        elif kind is EventKind.WRITE:
            self.on_write(event)
        elif kind is EventKind.ACQUIRE:
            self.on_acquire(event)
        elif kind is EventKind.RELEASE:
            self.on_release(event)
        elif kind is EventKind.FORK:
            self.on_fork(event)
        elif kind is EventKind.JOIN:
            self.on_join(event)
        elif kind is EventKind.VOLATILE_WRITE:
            self.on_volatile_write(event)
        elif kind is EventKind.VOLATILE_READ:
            self.on_volatile_read(event)
        elif kind is EventKind.BEGIN:
            self.on_begin(event)
        elif kind is EventKind.END:
            self.on_end(event)

    # ------------------------------------------------------------------
    # Hooks (subclasses override the ones their relation cares about)
    # ------------------------------------------------------------------
    @abc.abstractmethod
    def on_read(self, e: Event) -> None: ...

    @abc.abstractmethod
    def on_write(self, e: Event) -> None: ...

    @abc.abstractmethod
    def on_acquire(self, e: Event) -> None: ...

    @abc.abstractmethod
    def on_release(self, e: Event) -> None: ...

    def on_fork(self, e: Event) -> None:  # pragma: no cover - overridden
        pass

    def on_join(self, e: Event) -> None:  # pragma: no cover - overridden
        pass

    def on_volatile_write(self, e: Event) -> None:
        pass

    def on_volatile_read(self, e: Event) -> None:
        pass

    def on_begin(self, e: Event) -> None:
        pass

    def on_end(self, e: Event) -> None:
        pass

    # ------------------------------------------------------------------
    # Ordering queries (used by the combined pipeline for classification)
    # ------------------------------------------------------------------
    @abc.abstractmethod
    def ordered_to_current(self, prior: Event, tid: Tid) -> bool:
        """Is ``prior`` ordered (under this relation ∪ PO) before the next
        event of thread ``tid``, given the trace prefix processed so far?"""

    def on_forced_order(self, prior: Event, e: Event,
                        snapshot: Optional[VectorClock]) -> None:
        """Called when a detected race forces ``prior ≺ e`` (Section 6.1),
        after the prior's component (and, under transitive forcing, its
        stored clock ``snapshot``) was joined into the analysis clock.
        Graph-building detectors override this to mirror the forced
        ordering as a constraint-graph edge; WCP overrides it to treat
        the forced edge as *hard* (joined into H as well as P) so the
        ordering propagates through its H-only snapshots."""

    # ------------------------------------------------------------------
    # Shared race check
    # ------------------------------------------------------------------
    def check_access(self, e: Event, clock: VectorClock) -> Optional[DynamicRace]:
        """Race-check access ``e`` against the variable's history, update
        the history, and record at most one (shortest) dynamic race.

        ``clock`` is the executing thread's analysis clock; a prior access
        by thread ``u`` with thread-local time above ``clock[u]`` is
        unordered and therefore racing. After reporting, all racing priors
        are force-ordered into ``clock`` so subsequent races are
        independent (Section 6.1, "Handling DC-races").

        With a :attr:`prefilter` installed, accesses to variables that
        provably cannot race skip the check (and its clock snapshot)
        entirely. No force-ordering is lost: forcing only follows a
        race, and filtered variables have none.
        """
        if self.prefilter is not None:
            if e.target not in self.prefilter:
                self._filter_skips += 1
                return None
            self._filter_checks += 1
        assert self.trace is not None
        tid = e.tid
        history = self._history.get(e.target)
        if history is None:
            history = self._history[e.target] = AccessHistory()

        race: Optional[DynamicRace] = None
        tids = history.tids
        if tids and (len(tids) > 1 or tid not in tids):
            # Some other thread has accessed this variable, so a racing
            # prior is possible — scan the history (one fused kernel
            # call over the write table, plus the read table for
            # writes). (Single-threaded-so-far variables skip straight
            # to the bookkeeping below.)
            local_time = self.trace.local_time
            clock_get = clock.get
            racing: Optional[List[Tuple[Event, Optional[VectorClock]]]] = (
                _k.scan_racing_sparse(
                    history.last_write,
                    history.last_read if e.is_write else None,
                    tid, local_time, clock_get))

            if racing:
                self.racing_at[e.eid] = frozenset(p.eid for p, _ in racing)
                shortest = max((p for p, _ in racing), key=lambda p: p.eid)
                race = DynamicRace(first=shortest, second=e, relation=self.relation)
                assert self.report is not None
                self.report.races.append(race)
                if self.force_order:
                    for prior, snapshot in racing:
                        if clock_get(prior.tid) < local_time[prior.eid]:
                            clock.set(prior.tid, local_time[prior.eid])
                            if self.transitive_force and snapshot is not None:
                                # The prior access itself plus everything
                                # ordered before it.
                                clock.join(snapshot)
                                self._n_joins += 1
                            self.on_forced_order(prior, e, snapshot)

        snapshot2: Optional[VectorClock]
        if self.force_order and self.transitive_force:
            cached = self._snap_cache.get(tid)
            if cached is not None and cached[0] is clock and cached[2] == clock.version:
                snapshot2 = cached[1]
            else:
                snapshot2 = clock.copy()
                self._snap_cache[tid] = (clock, snapshot2, clock.version)
        else:
            # Snapshots are consumed only by transitive force-ordering;
            # when that can never happen, skip the copy entirely.
            snapshot2 = None
        tids.add(tid)
        # Re-insert at the end so table order is most-recent-last, a pure
        # function of the access sequence: the force-ordering loop above
        # consumes `racing` in table order and joins clocks as it goes, so
        # an order that depended on *first* access (dict in-place update)
        # would diverge once streaming GC removed and re-admitted a thread.
        table = history.last_write if e.is_write else history.last_read
        _k.record_latest(table, tid, (e, snapshot2))
        return race

    def bump(self, counter: str, amount: int = 1) -> None:
        """Increment an analysis statistics counter on the current report."""
        assert self.report is not None
        counters = self.report.counters
        counters[counter] = counters.get(counter, 0) + amount

    # ------------------------------------------------------------------
    # Streaming metadata GC (driven by repro.serve between events)
    # ------------------------------------------------------------------
    def gc_cover_clocks(self, tid: Tid) -> List[VectorClock]:
        """The clocks whose component-wise min is live thread ``tid``'s
        cover under this relation (see :class:`GCFloors`); empty when the
        detector holds no clock for ``tid`` yet. Implemented by the
        reference detectors (HB/WCP/DC) that the serve sessions run."""
        raise NotImplementedError(
            f"{type(self).__name__} does not support streaming GC")

    def gc_collect(self, floors: GCFloors) -> int:
        """Retire metadata no live thread can ever observe again; returns
        the number of entries dropped. Subclasses extend this with their
        relation-specific tables."""
        return self.gc_retire_history(floors)

    def gc_drop_thread(self, tid: Tid) -> None:
        """Forget per-thread state of a *joined* thread (its clock can
        never be read again: no further events, and a second join is
        structurally invalid). Subclasses extend."""
        self._snap_cache.pop(tid, None)

    def gc_retire_history(self, floors: GCFloors) -> int:
        """Drop access-history entries below the retirement floor.

        An entry races with a future access of live thread ``v`` only if
        ``local_time > clock_v(u)``; at or below the floor that is false
        for every live ``v``, so the scan in :meth:`check_access` could
        never include it in ``racing``. Shrinking :attr:`AccessHistory.tids`
        alongside keeps the single-accessor scan-skip gate consistent
        (a variable whose foreign entries all retired behaves like a
        fresh single-threaded one — same verdicts either way).
        """
        assert self.trace is not None
        local_time = self.trace.local_time
        retired = 0
        dead_vars: List[Target] = []
        for target, history in self._history.items():
            for table in (history.last_write, history.last_read):
                drop = [u for u, (prior, _snap) in table.items()
                        if local_time[prior.eid] <= floors.floor(u)]
                for u in drop:
                    del table[u]
                retired += len(drop)
            if history.last_write or history.last_read:
                live_tids = set(history.last_write)
                live_tids.update(history.last_read)
                history.tids &= live_tids
            else:
                dead_vars.append(target)
        for target in dead_vars:
            del self._history[target]
        return retired

    def gc_live_entries(self) -> int:
        """Access-history entries currently held (bounded-memory tests)."""
        return sum(len(h.last_write) + len(h.last_read)
                   for h in self._history.values())

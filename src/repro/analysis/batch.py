"""Batched trace interpretation over the packed columnar encoding.

:class:`BatchWCPDetector` and :class:`BatchDCDetector` are drop-in
replacements for the SmartTrack epoch detectors
(:mod:`repro.analysis.smarttrack`) that leave per-event Python dispatch
behind for the bulk of a trace. They consume the packed columnar
encoding (:mod:`repro.traces.packed`) directly: one numpy pass over the
``kinds`` / ``tid_idx`` / ``target_idx`` / ``local_time`` columns
segments the trace into per-thread runs of *batchable* events and a
sparse set of *fallback* events that still go through the epoch
per-event path, in trace order.

An access event is batchable exactly when the per-event interpreter
would provably treat it as pure thread-local bookkeeping:

* it is a plain read or write (never a sync operation),
* it does not consume a pending fork edge (it is not the target
  thread's first event after a fork), and
* its variable is accessed by a *single thread over the whole trace*
  (the reference skips the race scan outright for such variables; the
  metadata it records — last accesses, clock snapshots, rule (a)
  critical-section recordings — is only ever consumed by *other*
  threads accessing the same variable, so for these it is dead
  weight), or, with a prefilter installed, the variable is not a race
  candidate *and* no lock is held (the reference skips the check
  entirely, but a held access to a shared variable still does real
  rule (a) work).

Such events cannot race, cannot force an ordering, and never publish
their clock through any propagation channel, so the only observable
work they do is: the prefilter counters (summed vectorized with
``np.bincount``-style reductions), the DC program-order graph edges
(bulk-inserted between fallback events, preserving the reference's
dst-ordered insertion order), and their thread clock's own component
(caught up with a vectorized per-thread ``np.maximum`` fold over the
``local_time`` column at join points and at end of trace — the dense
clock kernel's join, applied to a whole column at once). Everything
else — sync events, lock-protected accesses, first-contention
promotions, races, forced edges — runs through the inherited epoch
fast paths unchanged, so verdicts, counters, ``racing_at``, and the DC
constraint graph are bit-identical to the reference detectors.

Fallbacks are rare on realistic traces (the Table 4 xalan stream is
~94% single-accessor plain accesses), which is where the speedup comes
from: the per-event interpreter simply never sees those events.

Batch statistics are published under ``analysis.<relation>_batch.*``:
``batch_runs`` / ``batch_events`` / ``batch_fallback_events`` counters
and a ``run_events`` histogram of events per batched run.
"""

from __future__ import annotations

import weakref
from bisect import bisect_left
from typing import (Any, Collection, Dict, FrozenSet, List, Optional,
                    Tuple)

import numpy as np

from repro import obs
from repro.analysis.races import RaceReport
from repro.analysis.smarttrack import EpochDCDetector, EpochWCPDetector
from repro.core.events import EventKind, Target
from repro.core.trace import Trace
from repro.obs.metrics import DEFAULT_SIZE_BUCKETS
from repro.traces.packed import KIND_ORDER, PackedTrace, pack

__all__ = ["BatchDCDetector", "BatchWCPDetector", "seed_packed"]

_KIND_CODE: Dict[EventKind, int] = {kind: i for i, kind in enumerate(KIND_ORDER)}
_READ = _KIND_CODE[EventKind.READ]
_WRITE = _KIND_CODE[EventKind.WRITE]
_ACQ = _KIND_CODE[EventKind.ACQUIRE]
_REL = _KIND_CODE[EventKind.RELEASE]
_FORK = _KIND_CODE[EventKind.FORK]
_JOIN = _KIND_CODE[EventKind.JOIN]


def _column(buffer: "Any", dtype: "Any") -> "Any":
    """A zero-copy int64/bool-ready numpy view of a packed column."""
    return np.frombuffer(buffer, dtype=dtype).astype(np.int64)


class _BatchPlan:
    """Trace-wide numpy segmentation, computed once per trace and shared
    by every batch detector run over it (WCP, DC, repeated pipelines).

    Everything here is prefilter-independent; detectors combine these
    masks with their own candidate set in :meth:`_BatchMixin._segment`.
    """

    __slots__ = ("n", "T", "tid", "tgt", "lt", "prev", "access",
                 "unbatchable", "held", "multi_ev", "order", "same",
                 "join_fix", "last_pos", "targets", "seg_cache",
                 "seg_cache_filtered")

    def __init__(self, trace: Trace, packed: PackedTrace):
        n = len(packed)
        self.n = n
        T = len(packed.tids)
        self.T = T
        kinds = _column(packed.kinds, np.uint8)
        tid = _column(packed.tid_idx, np.uint32)
        tgt = _column(packed.target_idx, np.int32)
        lt = _column(packed.local_time, np.uint32)
        self.tid = tid
        self.tgt = tgt
        self.lt = lt
        self.targets = packed.targets

        access = kinds <= _WRITE
        self.access = access

        # Previous same-thread event per position (-1 if none): group
        # positions by thread with a stable argsort, shift within groups.
        order = np.argsort(tid, kind="stable")
        self.order = order
        prev = np.full(n, -1, dtype=np.int64)
        if n > 1:
            same = tid[order[1:]] == tid[order[:-1]]
            prev[order[1:]] = np.where(same, order[:-1], -1)
            self.same = same
        else:
            self.same = np.zeros(0, dtype=bool)
        self.prev = prev

        # Accesses under held locks: replay only the (rare) acquire /
        # release events into per-thread depth transition lists, then
        # look every access's depth up with one searchsorted per thread.
        held = np.zeros(n, dtype=bool)
        sync_pos = np.flatnonzero((kinds == _ACQ) | (kinds == _REL))
        if sync_pos.size:
            depth_now = [0] * T
            trans_pos: List[List[int]] = [[] for _ in range(T)]
            trans_depth: List[List[int]] = [[] for _ in range(T)]
            for p, k, u in zip(sync_pos.tolist(), kinds[sync_pos].tolist(),
                               tid[sync_pos].tolist()):
                d = depth_now[u] + (1 if k == _ACQ else -1)
                if d < 0:  # malformed streams surface in the fallback path
                    d = 0
                depth_now[u] = d
                trans_pos[u].append(p)
                trans_depth[u].append(d)
            for u in range(T):
                tp = trans_pos[u]
                if not tp:
                    continue
                apos = np.flatnonzero(access & (tid == u))
                if not apos.size:
                    continue
                at = np.searchsorted(np.asarray(tp), apos, side="right") - 1
                seen = at >= 0
                depths = np.asarray(trans_depth[u])
                held_u = np.zeros(apos.size, dtype=bool)
                held_u[seen] = depths[at[seen]] > 0
                held[apos] = held_u

        # Fork consumption: the target thread's first event after each
        # fork joins the parent snapshot (and, for DC, adds the fork
        # edge), so it must run through the per-event path.
        forkc = np.zeros(n, dtype=bool)
        pool_ix = {t: i for i, t in enumerate(packed.tids)}
        fork_pos = np.flatnonzero(kinds == _FORK)
        join_pos = np.flatnonzero(kinds == _JOIN)
        tpos: Optional[List["Any"]] = None
        if fork_pos.size or join_pos.size:
            tpos = [np.flatnonzero(tid == u) for u in range(T)]
        for p in fork_pos.tolist():
            u = pool_ix.get(packed.targets[tgt[p]])
            if u is None:
                continue  # forked thread never executes an event
            assert tpos is not None
            ps = tpos[u]
            j = int(np.searchsorted(ps, p, side="right"))
            if j < ps.size:
                forkc[ps[j]] = True

        # Joins read the child's clock (and, for DC, its last event), so
        # the driver must catch the child's own component up to its last
        # event before the join — batched child events skip the advance.
        join_fix: Dict[int, Tuple[int, int]] = {}
        for p in join_pos.tolist():
            u = pool_ix.get(packed.targets[tgt[p]])
            if u is None:
                continue
            assert tpos is not None
            ps = tpos[u]
            j = int(np.searchsorted(ps, p, side="left")) - 1
            if j >= 0:
                join_fix[p] = (u, int(ps[j]))
        self.join_fix = join_fix

        # Whole-trace multi-accessor variables (their accesses can scan,
        # race, and force — all per-event work).
        multi_ev = np.zeros(n, dtype=bool)
        apos_all = np.flatnonzero(access)
        if apos_all.size:
            n_targets = len(packed.targets)
            pairs = np.unique(tgt[apos_all] * T + tid[apos_all])
            accessors = np.bincount(pairs // T, minlength=n_targets)
            multi_ev[apos_all] = (accessors >= 2)[tgt[apos_all]]
        self.multi_ev = multi_ev

        # Not batchable under any prefilter: sync / begin / end events
        # and fork-consuming events. Lock-protected accesses are kept
        # separately: rule (a) is a no-op for them unless the variable
        # is multi-accessor (`join_into` skips same-thread records, and
        # the recordings they leave behind are only ever consumed by
        # other threads of the same variable).
        self.unbatchable = ~access | forkc
        self.held = held

        # Per-thread last event position: a vectorized fold of the
        # position column per thread index (the dense kernel's join,
        # applied to whole columns), for the end-of-trace catch-up.
        last_pos = np.full(T, -1, dtype=np.int64)
        if n:
            np.maximum.at(last_pos, tid, np.arange(n, dtype=np.int64))
        self.last_pos = last_pos

        #: Cached prefilter-free segmentation (see _BatchMixin._segment).
        self.seg_cache: Optional[Tuple["Any", int, int, "Any"]] = None
        #: Per-prefilter segmentations, keyed by the detector's frozen
        #: candidate set. The candidate-membership scan over the target
        #: pool is the one Python-level loop on the filtered batch path;
        #: caching the whole segmentation makes repeat analyses of one
        #: trace (the parallel workers, the serve shards, perf runs)
        #: pay it once per distinct filter.
        self.seg_cache_filtered: Dict[FrozenSet[Any],
                                      Tuple["Any", int, int, "Any"]] = {}


#: One plan (and one packed encoding) per trace; weak keys keep the
#: cache from pinning traces, mirroring smarttrack's _INDEX_CACHE.
_PLAN_CACHE: "weakref.WeakKeyDictionary[Trace, _BatchPlan]" = (
    weakref.WeakKeyDictionary())
_PACKED_CACHE: "weakref.WeakKeyDictionary[Trace, PackedTrace]" = (
    weakref.WeakKeyDictionary())


def seed_packed(trace: Trace, packed: PackedTrace) -> None:
    """Register ``packed`` as ``trace``'s packed encoding so the batch
    detectors reuse it instead of re-packing (the parallel workers
    already hold one per pool)."""
    _PACKED_CACHE[trace] = packed


def _plan_for(trace: Trace) -> _BatchPlan:
    plan = _PLAN_CACHE.get(trace)
    if plan is None:
        packed = _PACKED_CACHE.get(trace)
        if packed is None:
            packed = pack(trace)
            _PACKED_CACHE[trace] = packed
        plan = _BatchPlan(trace, packed)
        _PLAN_CACHE[trace] = plan
    return plan


class _BatchMixin:
    """The batched driver shared by :class:`BatchWCPDetector` and
    :class:`BatchDCDetector`; mixed in ahead of the epoch detectors so
    :meth:`analyze` replaces the per-event loop while streaming use
    (``begin_trace`` / ``handle`` / ``finish``) stays pure epoch."""

    _batch_runs = 0
    _batch_events = 0
    _batch_fallback = 0
    _needs_po_flush = False
    _run_lengths: Optional["Any"] = None
    # The prefilter frozen once per detector (the seg_cache_filtered
    # key); _pf_src tracks which collection it was frozen from.
    _pf_frozen: Optional[FrozenSet[Any]] = None
    _pf_src: Optional[Collection[Any]] = None

    def metric_label(self) -> str:
        return self.relation.lower().replace("/", "_") + "_batch"  # type: ignore[attr-defined]

    def begin_trace(self, trace: Trace) -> None:
        super().begin_trace(trace)  # type: ignore[misc]
        self._batch_runs = 0
        self._batch_events = 0
        self._batch_fallback = 0
        self._run_lengths = None

    def analyze(self, trace: Trace) -> RaceReport:
        with obs.span(f"analysis.{self.metric_label()}") as sp:
            self.begin_trace(trace)
            self._drive(trace)
            report = self.finish()  # type: ignore[attr-defined]
            sp.annotate("events", len(trace))
            sp.annotate("races", len(report.races))
        return report

    def analyze_packed(self, packed: PackedTrace,
                       trace: Optional[Trace] = None) -> RaceReport:
        """Analyze a packed trace directly (unpacking once and reusing
        the packed columns for segmentation)."""
        if trace is None:
            trace = packed.unpack()
        seed_packed(trace, packed)
        return self.analyze(trace)

    # ------------------------------------------------------------------
    # Segmentation (vectorized over the packed columns)
    # ------------------------------------------------------------------
    def _segment(self, plan: _BatchPlan) -> "Any":
        """The batched-event mask for this detector's prefilter, plus
        the per-thread run lengths (a run: consecutive batched events of
        one thread not interrupted by a fallback event *of that
        thread*)."""
        prefilter = self.prefilter  # type: ignore[attr-defined]
        pf_key: Optional[FrozenSet[Any]] = None
        if prefilter is None:
            if plan.seg_cache is not None:  # trace-invariant: cache it
                return plan.seg_cache
            batched = plan.access & ~plan.unbatchable & ~plan.multi_ev
            skips = checks = 0
        else:
            if self._pf_src is not prefilter:
                self._pf_frozen = frozenset(prefilter)
                self._pf_src = prefilter
            pf_key = self._pf_frozen
            assert pf_key is not None
            cached = plan.seg_cache_filtered.get(pf_key)
            if cached is not None:
                return cached
            cand = np.fromiter((t in pf_key for t in plan.targets),
                               dtype=bool, count=len(plan.targets))
            cand_ev = np.zeros(plan.n, dtype=bool)
            apos = np.flatnonzero(plan.access)
            if apos.size:
                cand_ev[apos] = cand[plan.tgt[apos]]
            # Non-candidate accesses skip the race check entirely, so
            # they are batchable even for shared variables — but a held
            # access to a shared variable still does rule (a) work.
            batched = plan.access & ~plan.unbatchable & (
                ~plan.multi_ev | ~cand_ev) & ~(plan.held & plan.multi_ev)
            skips = int(np.count_nonzero(batched & ~cand_ev))
            checks = int(np.count_nonzero(batched & cand_ev))

        # Run statistics, in thread-grouped order: a batched event opens
        # a new run unless its same-thread predecessor was also batched.
        order = plan.order
        grouped = batched[order]
        if plan.n > 1:
            prev_grouped = np.concatenate(([False], grouped[:-1]))
            prev_same = np.concatenate(([False], plan.same))
            starts = grouped & ~(prev_same & prev_grouped)
        else:
            starts = grouped.copy()
        idx = np.flatnonzero(grouped)
        sidx = np.flatnonzero(starts)
        if idx.size:
            run_bounds = np.searchsorted(idx, sidx)
            lengths = np.diff(np.concatenate((run_bounds, [idx.size])))
        else:
            lengths = np.zeros(0, dtype=np.int64)
        result = (batched, skips, checks, lengths)
        if prefilter is None:
            plan.seg_cache = result
        else:
            assert pf_key is not None
            plan.seg_cache_filtered[pf_key] = result
        return result

    # ------------------------------------------------------------------
    # Subclass hooks
    # ------------------------------------------------------------------
    def _catchup_thread(self, ti: int, t: int, last_eid: int) -> None:
        """Advance thread ``ti``'s own clock component to ``t`` (its
        last processed event's local time), creating the clock if the
        thread ran only batched events."""
        raise NotImplementedError

    def _po_setup(self, plan: _BatchPlan, batched: "Any") -> None:
        """Prepare bulk program-order edge insertion (DC graph only)."""

    def _po_flush(self, pos: int) -> None:
        """Insert batched events' PO edges with dst < ``pos`` (DC)."""

    def _fix_prev(self, eid: int, ti: int, prev_eid: int) -> None:
        """Restore per-thread last-event bookkeeping before a fallback
        event whose same-thread predecessor was batched (DC)."""

    # ------------------------------------------------------------------
    # The driver
    # ------------------------------------------------------------------
    def _drive(self, trace: Trace) -> None:
        plan = _plan_for(trace)
        batched, skips, checks, lengths = self._segment(plan)
        self._filter_skips += skips  # type: ignore[attr-defined]
        self._filter_checks += checks  # type: ignore[attr-defined]
        self._run_lengths = lengths
        self._batch_runs = int(lengths.size)
        self._batch_events = int(np.count_nonzero(batched))
        self._batch_fallback = plan.n - self._batch_events

        # Packed thread indices -> this run's TidTable indices (the
        # epoch preprocessing may intern additional forked-but-never-run
        # threads, so the spaces are aligned explicitly).
        ix = self._ix  # type: ignore[attr-defined]
        assert ix is not None
        to_ix = [ix.table.index[t] for t in trace.threads]

        self._po_setup(plan, batched)
        events = trace.events
        handle = self.handle  # type: ignore[attr-defined]
        join_fix = plan.join_fix
        lt_col = plan.lt

        # Vectorize the per-fallback bookkeeping lookups: which events
        # need their same-thread predecessor restored (it was batched),
        # and each fallback event's thread index — numpy scalar indexing
        # inside the loop would cost more than the loop body.
        fpos = np.flatnonzero(~batched)
        fprev = plan.prev[fpos]
        need_fix = fprev >= 0
        need_fix[need_fix] = batched[fprev[need_fix]]
        fix_prev = np.where(need_fix, fprev, -1).tolist()
        ftid = plan.tid[fpos].tolist()
        flush = self._needs_po_flush
        for pos, fp, u in zip(fpos.tolist(), fix_prev, ftid):
            if flush:
                self._po_flush(pos)
            fix = join_fix.get(pos)
            if fix is not None:
                cu, child_last = fix
                self._catchup_thread(to_ix[cu], int(lt_col[child_last]),
                                     child_last)
            if fp >= 0:
                self._fix_prev(pos, to_ix[u], fp)
            handle(events[pos])
        if flush:
            self._po_flush(plan.n)

        # End-of-trace catch-up: every thread's own component reaches
        # its final event's local time, exactly as the per-event
        # interpreter leaves it (clock_of / ordered_to_current parity).
        for u, last in enumerate(plan.last_pos.tolist()):
            if last >= 0:
                self._catchup_thread(to_ix[u], int(lt_col[last]), last)

    # ------------------------------------------------------------------
    # Observability
    # ------------------------------------------------------------------
    def fast_stats(self) -> Dict[str, int]:
        stats: Dict[str, int] = super().fast_stats()  # type: ignore[misc]
        stats["batch_runs"] = self._batch_runs
        stats["batch_events"] = self._batch_events
        stats["batch_fallback_events"] = self._batch_fallback
        return stats

    def _publish(self, reg: obs.AnyRegistry) -> None:
        super()._publish(reg)  # type: ignore[misc]
        lengths = self._run_lengths
        if lengths is not None and lengths.size:
            hist = reg.histogram(
                f"analysis.{self.metric_label()}.run_events",
                DEFAULT_SIZE_BUCKETS)
            for length in lengths.tolist():
                hist.observe(length)


class BatchWCPDetector(_BatchMixin, EpochWCPDetector):
    """Batched WCP detector (verdict-identical to
    :class:`~repro.analysis.wcp.WCPDetector`).

    Batched events contribute no WCP state at all — P never carries own
    program order and batched snapshots are never consumed — so the
    whole batched fraction of the trace reduces to the vectorized
    segmentation pass plus own-component catch-ups at joins and at end
    of trace.
    """

    def __init__(self, prefilter: Optional[Collection[Target]] = None):
        EpochWCPDetector.__init__(self, prefilter)

    def _catchup_thread(self, ti: int, t: int, last_eid: int) -> None:
        h = self._h[ti]
        if h is None:
            h = self._h[ti] = [0] * self._T
            self._p[ti] = [0] * self._T
        if h[ti] < t:
            h[ti] = t


class BatchDCDetector(_BatchMixin, EpochDCDetector):
    """Batched DC detector (verdict- and graph-identical to
    :class:`~repro.analysis.dc.DCDetector`).

    Batched events still owe the constraint graph their program-order
    edges; they are bulk-inserted between fallback events in ascending
    destination order — exactly the reference's insertion order, since
    every reference edge is added while processing its destination.
    """

    def __init__(self, build_graph: bool = True,
                 prefilter: Optional[Collection[Target]] = None):
        EpochDCDetector.__init__(self, build_graph, prefilter)
        self._po_flat: List[int] = []
        self._po_dst: List[int] = []
        self._po_i = 0

    def _catchup_thread(self, ti: int, t: int, last_eid: int) -> None:
        values = self._values[ti]
        if values is None:
            values = self._values[ti] = [0] * self._T
        if values[ti] < t:
            values[ti] = t
        if self._last_event[ti] < last_eid:
            self._last_event[ti] = last_eid

    def _po_setup(self, plan: _BatchPlan, batched: "Any") -> None:
        if not self.build_graph:
            self._po_flat = []
            self._po_dst = []
            self._po_i = 0
            self._needs_po_flush = False
            return
        dst = np.flatnonzero(batched & (plan.prev >= 0))
        self._po_dst = dst.tolist()
        # Pre-flattened [src0, dst0, src1, dst1, ...] so a flush is one
        # bisect plus one bulk list.extend into the edge buffer.
        self._po_flat = np.ravel(
            np.column_stack((plan.prev[dst], dst))).tolist()
        self._po_i = 0
        self._needs_po_flush = True

    def _po_flush(self, pos: int) -> None:
        i = self._po_i
        dst = self._po_dst
        if i >= len(dst):
            return
        cut = bisect_left(dst, pos, i)
        if cut > i:
            # Batched PO edges route through the same edge buffer as the
            # per-event paths, keeping the global drain order identical
            # to the reference's insertion order.
            self._ebuf.extend(self._po_flat[2 * i:2 * cut])
            self._po_i = cut

    def _fix_prev(self, eid: int, ti: int, prev_eid: int) -> None:
        # The inherited _advance reads _last_event[ti] for the PO edge;
        # batched predecessors never wrote it.
        if self._last_event[ti] < prev_eid:
            self._last_event[ti] = prev_eid

"""Doesn't-commute (DC) analysis (Section 4 and Appendix A).

DC (Definition 4.1) is the complete-but-unsound predictive relation at
the core of Vindicator. Its rules (a) and (b) are WCP's, but DC composes
only with program order — there is *no* synchronisation-order join at an
acquire and no HB composition — so DC orders strictly fewer events than
WCP ∪ PO and therefore predicts every predictable race (Theorem 1),
along with possible false races that VindicateRace later checks.

The detector simultaneously builds the constraint graph ``G`` whose
reachability equals DC ordering (Section 5.1). Following the paper's
implementation notes it adds an edge ``(e_src, e)`` only when the
ordering is newly established at ``e`` (vector-clock edge minimisation),
and after reporting a race it forces the racing pair's ordering in both
the clocks and the graph.
"""

from __future__ import annotations

from typing import Collection, Dict, List, Optional, Set, Tuple

from repro.core.events import Event, Target, Tid
from repro.core.exceptions import MalformedTraceError
from repro.core.trace import Trace
from repro.core.vectorclock import VectorClock
from repro.analysis.base import Detector
from repro.analysis.races import RaceReport
from repro.analysis.sync_structures import (LockQueues, SourceClocks,
                                            _retire_source_tables)
from repro.graph.constraint_graph import ConstraintGraph


class DCDetector(Detector):
    """Online DC analysis with optional constraint-graph construction.

    Args:
        build_graph: Whether to build the constraint graph ``G``
            alongside the vector clocks (needed for vindication; can be
            disabled to measure the pure analysis cost).
        prefilter: Race-candidate variable set for the lockset fast
            path (see :class:`~repro.analysis.base.Detector`).
    """

    relation = "DC"

    def __init__(self, build_graph: bool = True,
                 prefilter: Optional[Collection[Target]] = None,
                 fast_vc: bool = False):
        super().__init__(prefilter, fast_vc=fast_vc)
        self.build_graph = build_graph
        self.graph = ConstraintGraph()
        self._clocks: Dict[Tid, VectorClock] = {}
        self._queues: Dict[Target, LockQueues] = {}
        self._cs_writes: Dict[Tuple[Target, Target], SourceClocks] = {}
        self._cs_reads: Dict[Tuple[Target, Target], SourceClocks] = {}
        self._vol_writes: Dict[Target, SourceClocks] = {}
        self._vol_reads: Dict[Target, SourceClocks] = {}
        self._pending_vars: Dict[Tid, Dict[Target, Tuple[Set[Target], Set[Target]]]] = {}
        self._pending_fork: Dict[Tid, Tuple[int, VectorClock]] = {}
        self._last_event: Dict[Tid, int] = {}
        #: Non-PO graph edges added; batched into the report (and the
        #: metrics registry) at :meth:`finish` so the per-edge cost is a
        #: single int increment on the hot path.
        self._n_graph_edges = 0

    def begin_trace(self, trace: Trace) -> None:
        super().begin_trace(trace)
        self.graph = ConstraintGraph(len(trace))
        self._n_graph_edges = 0
        self._clocks = {}
        self._queues = {}
        self._cs_writes = {}
        self._cs_reads = {}
        self._vol_writes = {}
        self._vol_reads = {}
        self._pending_vars = {}
        self._pending_fork = {}
        self._last_event = {}

    def finish(self) -> RaceReport:
        assert self.report is not None, "begin_trace was never called"
        if self._n_graph_edges:
            counters = self.report.counters
            counters["graph_edges"] = (
                counters.get("graph_edges", 0) + self._n_graph_edges)
            self._n_graph_edges = 0
        return super().finish()

    # ------------------------------------------------------------------
    # Clock / graph plumbing
    # ------------------------------------------------------------------
    def _advance(self, e: Event) -> VectorClock:
        """Advance the thread's DC clock to this event; add the PO edge
        and any pending fork edge to the graph."""
        clock = self._clocks.get(e.tid)
        if clock is None:
            clock = self._new_clock()
            self._clocks[e.tid] = clock
        assert self.trace is not None
        clock.advance(e.tid, self.trace.local_time[e.eid])
        if self.build_graph:
            prev = self._last_event.get(e.tid)
            if prev is not None:
                self.graph.add_edge(prev, e.eid)
        pending = self._pending_fork.pop(e.tid, None)
        if pending is not None:
            fork_eid, parent_clock = pending
            clock.join(parent_clock)
            self._n_joins += 1
            self._add_edge(fork_eid, e.eid)
        self._last_event[e.tid] = e.eid
        return clock

    def _add_edge(self, src: int, dst: int) -> None:
        if self.build_graph:
            self.graph.add_edge(src, dst)
            self._n_graph_edges += 1

    def _add_edges(self, sources: List[int], dst: int) -> None:
        for src in sources:
            self._add_edge(src, dst)

    def on_forced_order(self, prior: Event, e: Event,
                        snapshot: Optional[VectorClock]) -> None:
        # The snapshot was already joined by check_access; DC's single
        # clock carries it everywhere, so only the graph needs the edge.
        self._add_edge(prior.eid, e.eid)
        self.bump("forced_orders")

    # ------------------------------------------------------------------
    # Accesses: rule (a) joins, pending recording, race check
    # ------------------------------------------------------------------
    def _rule_a(self, e: Event, clock: VectorClock, is_write: bool) -> None:
        assert self.trace is not None
        held = self.trace.held_locks(e)
        if not held:
            return
        var = e.target
        for lock in held:
            writes = self._cs_writes.get((lock, var))
            if writes:
                self._add_edges(writes.join_into(clock, e.tid), e.eid)
            if is_write:
                reads = self._cs_reads.get((lock, var))
                if reads:
                    self._add_edges(reads.join_into(clock, e.tid), e.eid)
            pending = self._pending_vars.setdefault(e.tid, {}).get(lock)
            if pending is None:
                pending = (set(), set())
                self._pending_vars[e.tid][lock] = pending
            pending[1 if is_write else 0].add(var)

    def on_read(self, e: Event) -> None:
        clock = self._advance(e)
        self._rule_a(e, clock, is_write=False)
        self.check_access(e, clock)

    def on_write(self, e: Event) -> None:
        clock = self._advance(e)
        self._rule_a(e, clock, is_write=True)
        self.check_access(e, clock)

    # ------------------------------------------------------------------
    # Lock operations: rule (b) and rule (a) recording
    # ------------------------------------------------------------------
    def on_acquire(self, e: Event) -> None:
        self._advance(e)
        assert self.trace is not None
        queues = self._queues.get(e.target)
        if queues is None:
            queues = LockQueues()
            self._queues[e.target] = queues
        queues.on_acquire(e.tid, self.trace.local_time[e.eid])
        # Note: no synchronisation-order join — this is where DC departs
        # from HB and WCP.

    def on_release(self, e: Event) -> None:
        clock = self._advance(e)
        assert self.trace is not None
        queues = self._queues.get(e.target)
        if queues is None or queues.open_record is None \
                or queues.open_record.tid != e.tid:
            # Streaming traces bypass Trace's construction-time
            # validation, so a release without a matching acquire must
            # surface as a malformed-trace error, not a KeyError.
            raise MalformedTraceError(
                f"{e}: releases lock {e.target!r} with no matching acquire "
                f"by thread {e.tid!r}",
                event_index=e.eid,
            )
        self._add_edges(queues.apply_rule_b(e.tid, clock), e.eid)
        snapshot = clock.copy()
        local_time = self.trace.local_time[e.eid]
        pending = self._pending_vars.get(e.tid, {}).pop(e.target, None)
        if pending is not None:
            read_vars, written_vars = pending
            for var in written_vars:
                table = self._cs_writes.setdefault((e.target, var), SourceClocks())
                table.record(e.tid, e.eid, local_time, snapshot)
            for var in read_vars:
                table = self._cs_reads.setdefault((e.target, var), SourceClocks())
                table.record(e.tid, e.eid, local_time, snapshot)
        queues.on_release(e.eid, local_time, snapshot)

    # ------------------------------------------------------------------
    # Fork / join / volatiles: direct DC ordering (Section 6.1)
    # ------------------------------------------------------------------
    def on_fork(self, e: Event) -> None:
        clock = self._advance(e)
        self._pending_fork[e.target] = (e.eid, clock.copy())

    def on_join(self, e: Event) -> None:
        clock = self._advance(e)
        pending = self._pending_fork.pop(e.target, None)
        if pending is not None:
            # The child never executed an event, so its first-event hook
            # never consumed the fork: the fork ordering still flows
            # through the (empty) child into the join, both in the clock
            # and as a fork→join graph edge.
            fork_eid, parent_clock = pending
            clock.join(parent_clock)
            self._n_joins += 1
            self._add_edge(fork_eid, e.eid)
        child_clock = self._clocks.get(e.target)
        if child_clock is not None:
            clock.join(child_clock)
            self._n_joins += 1
            child_last = self._last_event.get(e.target)
            if child_last is not None:
                self._add_edge(child_last, e.eid)

    def on_volatile_write(self, e: Event) -> None:
        clock = self._advance(e)
        assert self.trace is not None
        writes = self._vol_writes.setdefault(e.target, SourceClocks())
        reads = self._vol_reads.setdefault(e.target, SourceClocks())
        self._add_edges(writes.join_into(clock, e.tid), e.eid)
        self._add_edges(reads.join_into(clock, e.tid), e.eid)
        writes.record(e.tid, e.eid, self.trace.local_time[e.eid], clock.copy())

    def on_volatile_read(self, e: Event) -> None:
        clock = self._advance(e)
        assert self.trace is not None
        writes = self._vol_writes.get(e.target)
        if writes:
            self._add_edges(writes.join_into(clock, e.tid), e.eid)
        reads = self._vol_reads.setdefault(e.target, SourceClocks())
        reads.record(e.tid, e.eid, self.trace.local_time[e.eid], clock.copy())

    def on_begin(self, e: Event) -> None:
        self._advance(e)

    def on_end(self, e: Event) -> None:
        self._advance(e)

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def ordered_to_current(self, prior: Event, tid: Tid) -> bool:
        if prior.tid == tid:
            return True
        clock = self._clocks.get(tid)
        assert self.trace is not None
        return clock is not None and clock.get(prior.tid) >= self.trace.local_time[prior.eid]

    def clock_of(self, tid: Tid) -> Optional[VectorClock]:
        """The thread's current DC clock (None before its first event)."""
        return self._clocks.get(tid)

    # ------------------------------------------------------------------
    # Streaming metadata GC (repro.serve)
    # ------------------------------------------------------------------
    def gc_cover_clocks(self, tid: Tid):
        clock = self._clocks.get(tid)
        if clock is not None:
            return [clock]
        pending = self._pending_fork.get(tid)
        return [] if pending is None else [pending[1]]

    def gc_collect(self, floors) -> int:
        retired = super().gc_collect(floors)
        for tables in (self._cs_writes, self._cs_reads,
                       self._vol_writes, self._vol_reads):
            retired += _retire_source_tables(tables, floors)
        for lock in list(self._queues):
            queues = self._queues[lock]
            # DC's single clock always dominates the thread's own past,
            # so own records join nothing; passing the thread clock makes
            # the own-record dominance check trivially true.
            retired += queues.gc_retire(floors, self._clocks.get)
            if not queues.records and not queues.cursors \
                    and queues.open_record is None:
                del self._queues[lock]
        return retired

    def gc_drop_thread(self, tid: Tid) -> None:
        super().gc_drop_thread(tid)
        self._clocks.pop(tid, None)
        self._pending_fork.pop(tid, None)
        self._pending_vars.pop(tid, None)
        self._last_event.pop(tid, None)

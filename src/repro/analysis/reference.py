"""Reference (closure-based) implementations of HB, WCP, and DC.

These engines compute each relation *exactly as defined* (Definitions
2.5, 2.6, and 4.1) by fixpoint iteration over explicit boolean
reachability matrices. They are cubic-ish in trace length and intended
purely as ground truth: the differential and property-based tests check
that the linear-time online detectors compute identical orderings.

Relation recap:

* HB  = transitive closure of PO ∪ lock sync order ∪ hard edges.
* WCP = smallest relation closed under rule (a), rule (b), and
  composition with HB on either side; hard edges are included as base
  orderings (fork/join/volatile ordering can never be reordered).
* DC  = smallest relation containing PO and hard edges, closed under
  rule (a), rule (b), and transitivity.

"Hard edges" are fork→first-child-event, last-child-event→join, and
ordering between conflicting volatile accesses — unconditional
orderings that every correctly reordered trace preserves.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.core.events import Event, EventKind, Target, Tid, conflicts
from repro.core.trace import Trace
from repro.analysis.races import DynamicRace


def _close(matrix: np.ndarray) -> np.ndarray:
    """Transitive closure by repeated boolean squaring."""
    closed = matrix.copy()
    while True:
        step = (closed.astype(np.int32) @ closed.astype(np.int32)) > 0
        new = closed | step
        if np.array_equal(new, closed):
            return closed
        closed = new


def _compose(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Relational composition ``a ; b`` of boolean matrices."""
    return (a.astype(np.int32) @ b.astype(np.int32)) > 0


class CriticalSection:
    """A critical section as the reference engines see it."""

    def __init__(self, lock: Target, tid: Tid, acq_eid: int):
        self.lock = lock
        self.tid = tid
        self.acq_eid = acq_eid
        self.rel_eid: Optional[int] = None
        self.member_eids: List[int] = [acq_eid]

    @property
    def closed(self) -> bool:
        return self.rel_eid is not None


class ReferenceAnalysis:
    """Exact fixpoint computation of the three relations for one trace.

    All matrices are strict: ``matrix[i, j]`` means event ``i`` is
    ordered before event ``j``. Matrices are computed lazily and cached.
    """

    def __init__(self, trace: Trace):
        self.trace = trace
        self.n = len(trace)
        self._hb: Optional[np.ndarray] = None
        self._wcp: Optional[np.ndarray] = None
        self._dc: Optional[np.ndarray] = None
        self._critical_sections = self._collect_critical_sections()

    # ------------------------------------------------------------------
    # Structure extraction
    # ------------------------------------------------------------------
    def _collect_critical_sections(self) -> List[CriticalSection]:
        sections: List[CriticalSection] = []
        open_cs: Dict[Tuple[Target, Tid], List[CriticalSection]] = {}
        per_thread_open: Dict[Tid, List[CriticalSection]] = {}
        for e in self.trace:
            if e.kind is EventKind.ACQUIRE:
                cs = CriticalSection(e.target, e.tid, e.eid)
                sections.append(cs)
                open_cs.setdefault((e.target, e.tid), []).append(cs)
                # The acquire belongs to enclosing critical sections too.
                for outer in per_thread_open.get(e.tid, ()):
                    outer.member_eids.append(e.eid)
                per_thread_open.setdefault(e.tid, []).append(cs)
            elif e.kind is EventKind.RELEASE:
                for cs in per_thread_open.get(e.tid, ()):
                    cs.member_eids.append(e.eid)
                cs = open_cs[(e.target, e.tid)].pop()
                cs.rel_eid = e.eid
                per_thread_open[e.tid].remove(cs)
            else:
                for cs in per_thread_open.get(e.tid, ()):
                    cs.member_eids.append(e.eid)
        return sections

    def _po_edges(self) -> np.ndarray:
        m = np.zeros((self.n, self.n), dtype=bool)
        last: Dict[Tid, int] = {}
        for e in self.trace:
            prev = last.get(e.tid)
            if prev is not None:
                m[prev, e.eid] = True
            last[e.tid] = e.eid
        return m

    def _hard_edges(self) -> np.ndarray:
        """Fork/join and volatile ordering edges (never reorderable)."""
        m = np.zeros((self.n, self.n), dtype=bool)
        first_of: Dict[Tid, int] = {}
        last_of: Dict[Tid, int] = {}
        fork_of: Dict[Tid, int] = {}
        for e in self.trace:
            if e.tid not in first_of:
                first_of[e.tid] = e.eid
            last_of[e.tid] = e.eid
            if e.kind is EventKind.FORK:
                fork_of[e.target] = e.eid
        vol_accesses: Dict[Target, List[Event]] = {}
        for e in self.trace:
            if e.kind is EventKind.FORK and e.target in first_of:
                m[e.eid, first_of[e.target]] = True
            elif e.kind is EventKind.JOIN:
                if e.target in last_of and last_of[e.target] < e.eid:
                    m[last_of[e.target], e.eid] = True
                elif e.target not in last_of and e.target in fork_of:
                    # The joined child never executed an event; the fork
                    # still orders before the join through the (empty)
                    # child's lifetime.
                    m[fork_of[e.target], e.eid] = True
            elif e.kind.is_volatile:
                prior_list = vol_accesses.setdefault(e.target, [])
                for prior in prior_list:
                    # Same-thread pairs are already program-ordered; adding
                    # them as hard edges would wrongly feed WCP's
                    # left-HB-composition.
                    if prior.tid == e.tid:
                        continue
                    if (prior.kind is EventKind.VOLATILE_WRITE
                            or e.kind is EventKind.VOLATILE_WRITE):
                        m[prior.eid, e.eid] = True
                prior_list.append(e)
        return m

    def _sync_edges(self) -> np.ndarray:
        """Lock release → later acquire edges (HB synchronisation order)."""
        m = np.zeros((self.n, self.n), dtype=bool)
        last_release: Dict[Target, int] = {}
        for e in self.trace:
            if e.kind is EventKind.ACQUIRE:
                prev = last_release.get(e.target)
                if prev is not None:
                    m[prev, e.eid] = True
            elif e.kind is EventKind.RELEASE:
                last_release[e.target] = e.eid
        return m

    def _rule_a_edges(self) -> np.ndarray:
        """Rule (a) base edges: release of the earlier critical section →
        conflicting event in the later critical section on the same lock.
        The earlier section must be closed; the later one may still be
        open at trace end (the conflicting event already holds the lock).
        """
        m = np.zeros((self.n, self.n), dtype=bool)
        by_lock: Dict[Target, List[CriticalSection]] = {}
        for cs in self._critical_sections:
            by_lock.setdefault(cs.lock, []).append(cs)
        events = self.trace.events
        for sections in by_lock.values():
            for i, cs1 in enumerate(sections):
                if not cs1.closed:
                    continue
                for cs2 in sections[i + 1:]:
                    for eid2 in cs2.member_eids:
                        e2 = events[eid2]
                        if not e2.is_access:
                            continue
                        for eid1 in cs1.member_eids:
                            if conflicts(events[eid1], e2):
                                assert cs1.rel_eid is not None
                                m[cs1.rel_eid, eid2] = True
                                break
        return m

    def _apply_rule_b(self, matrix: np.ndarray) -> bool:
        """Add rule (b) edges: ``r1 ≺ r2`` when ``A(r1) ≺ r2`` for
        same-lock releases. Returns True if anything was added."""
        changed = False
        by_lock: Dict[Target, List[CriticalSection]] = {}
        for cs in self._critical_sections:
            if cs.closed:
                by_lock.setdefault(cs.lock, []).append(cs)
        for sections in by_lock.values():
            for i, cs1 in enumerate(sections):
                for cs2 in sections[i + 1:]:
                    assert cs1.rel_eid is not None and cs2.rel_eid is not None
                    if (matrix[cs1.acq_eid, cs2.rel_eid]
                            and not matrix[cs1.rel_eid, cs2.rel_eid]):
                        matrix[cs1.rel_eid, cs2.rel_eid] = True
                        changed = True
        return changed

    # ------------------------------------------------------------------
    # Relations
    # ------------------------------------------------------------------
    @property
    def hb(self) -> np.ndarray:
        """The strict happens-before matrix."""
        if self._hb is None:
            base = self._po_edges() | self._sync_edges() | self._hard_edges()
            self._hb = _close(base)
        return self._hb

    @property
    def wcp(self) -> np.ndarray:
        """The strict WCP matrix (without PO; race checks use WCP ∪ PO)."""
        if self._wcp is None:
            hb = self.hb
            w = self._rule_a_edges() | self._hard_edges()
            while True:
                before = w.copy()
                w |= _compose(hb, w) | _compose(w, hb) | _compose(w, w)
                self._apply_rule_b(w)
                if np.array_equal(w, before):
                    break
            self._wcp = w
        return self._wcp

    @property
    def dc(self) -> np.ndarray:
        """The strict DC matrix (includes PO, per rule (c))."""
        if self._dc is None:
            d = self._rule_a_edges() | self._hard_edges() | self._po_edges()
            while True:
                before = d.copy()
                d = _close(d)
                self._apply_rule_b(d)
                if np.array_equal(d, before):
                    break
            self._dc = d
        return self._dc

    # ------------------------------------------------------------------
    # Ordering / race queries
    # ------------------------------------------------------------------
    def hb_ordered(self, i: int, j: int) -> bool:
        return bool(self.hb[i, j])

    def wcp_ordered(self, i: int, j: int) -> bool:
        """Ordered by WCP ∪ PO (the WCP-race check relation)."""
        events = self.trace.events
        if events[i].tid == events[j].tid:
            return i < j
        return bool(self.wcp[i, j])

    def dc_ordered(self, i: int, j: int) -> bool:
        return bool(self.dc[i, j])

    def _races(self, ordered, relation: str) -> List[DynamicRace]:
        out = []
        for e1, e2 in self.trace.conflicting_pairs():
            if not ordered(e1.eid, e2.eid):
                out.append(DynamicRace(first=e1, second=e2, relation=relation))
        return out

    def hb_races(self) -> List[DynamicRace]:
        """All conflicting pairs unordered by HB."""
        return self._races(self.hb_ordered, "HB")

    def wcp_races(self) -> List[DynamicRace]:
        """All conflicting pairs unordered by WCP ∪ PO."""
        return self._races(self.wcp_ordered, "WCP")

    def dc_races(self) -> List[DynamicRace]:
        """All conflicting pairs unordered by DC."""
        return self._races(self.dc_ordered, "DC")

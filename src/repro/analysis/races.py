"""Race records: dynamic races, static de-duplication, classification.

The paper distinguishes *dynamic* races — pairs of events in the trace —
from *statically distinct* races — unordered pairs of static source
locations (Table 1 reports both). A dynamic race additionally carries the
relations under which the pair was unordered, which classifies it as an
HB-race, a WCP-only race, or a DC-only race (Figure 6's three series).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterable, List, Optional, Tuple

from repro.core.events import Event


class RaceClass(enum.Enum):
    """Classification of a dynamic race by the strongest relation that
    leaves the pair unordered (HB ⊆ WCP ⊆ DC as detectors)."""

    HB = "HB"            # unordered even by happens-before
    WCP_ONLY = "WCP-only"  # WCP-race that is not an HB-race
    DC_ONLY = "DC-only"   # DC-race that is not a WCP-race

    def __str__(self) -> str:
        return self.value


@dataclass(frozen=True)
class DynamicRace:
    """A dynamic race: two conflicting events unordered by some relation.

    Attributes:
        first: The earlier event in ``<_tr`` order.
        second: The later event.
        relation: Name of the relation whose detector reported the pair
            (``"HB"``, ``"WCP"``, or ``"DC"``).
        race_class: Cross-analysis classification, filled in when the
            combined Vindicator pipeline runs all three analyses on the
            same trace; None when a detector ran alone.
    """

    first: Event
    second: Event
    relation: str
    race_class: Optional[RaceClass] = field(default=None, compare=False)

    def __post_init__(self):
        if self.first.eid >= self.second.eid:
            raise ValueError("DynamicRace events must be in trace order")

    @property
    def event_distance(self) -> int:
        """Distance apart in ``<_tr`` of the two conflicting events
        (Table 2 / Figure 6 metric)."""
        return self.second.eid - self.first.eid

    @property
    def static_key(self) -> FrozenSet[str]:
        """The statically distinct race this dynamic race instantiates:
        the unordered pair of source locations. Events without a ``loc``
        fall back to a thread-agnostic kind/variable label."""
        return frozenset((_loc_of(self.first), _loc_of(self.second)))

    def __str__(self) -> str:
        tag = f" [{self.race_class}]" if self.race_class else ""
        return (f"{self.relation}-race{tag}: {self.first} <-> {self.second} "
                f"(distance {self.event_distance})")


def _loc_of(e: Event) -> str:
    return e.loc if e.loc is not None else f"{e.kind.value}({e.target})"


def static_races(races: Iterable[DynamicRace]) -> Dict[FrozenSet[str], List[DynamicRace]]:
    """Group dynamic races into statically distinct races.

    Returns a mapping from static key (unordered location pair) to the
    dynamic instances, preserving first-seen order of the keys.
    """
    groups: Dict[FrozenSet[str], List[DynamicRace]] = {}
    for race in races:
        groups.setdefault(race.static_key, []).append(race)
    return groups


@dataclass
class RaceReport:
    """The result of running one detector over one trace.

    Attributes:
        relation: The detector's relation name.
        races: Dynamic races, in detection order.
        counters: Free-form analysis statistics (joins performed, graph
            edges added, fast-path hits, ...).
    """

    relation: str
    races: List[DynamicRace] = field(default_factory=list)
    counters: Dict[str, int] = field(default_factory=dict)

    @property
    def dynamic_count(self) -> int:
        """Number of dynamic races (Table 1's parenthesised numbers)."""
        return len(self.races)

    @property
    def static_count(self) -> int:
        """Number of statically distinct races (Table 1's main numbers)."""
        return len(static_races(self.races))

    def static_keys(self) -> FrozenSet[FrozenSet[str]]:
        """The set of statically distinct races."""
        return frozenset(static_races(self.races))

    def by_class(self) -> Dict[RaceClass, List[DynamicRace]]:
        """Group this report's races by :class:`RaceClass` (races without a
        classification are omitted)."""
        out: Dict[RaceClass, List[DynamicRace]] = {}
        for race in self.races:
            if race.race_class is not None:
                out.setdefault(race.race_class, []).append(race)
        return out

    def __str__(self) -> str:
        return (f"{self.relation}: {self.static_count} static races "
                f"({self.dynamic_count} dynamic)")


def classify(pair_orderings: Tuple[bool, bool]) -> RaceClass:
    """Classify a DC-race given whether its pair is ordered by (HB, WCP∪PO).

    Args:
        pair_orderings: ``(hb_ordered, wcp_ordered)`` for the race's events.
    """
    hb_ordered, wcp_ordered = pair_orderings
    if not hb_ordered:
        return RaceClass.HB
    if not wcp_ordered:
        return RaceClass.WCP_ONLY
    return RaceClass.DC_ONLY

"""Plain-text trace format: reading and writing execution traces.

The format is line-oriented, one event per line, in trace order::

    # comments and blank lines are ignored
    T1 wr x    Loader.load():42
    T1 acq m
    T2 rd x    Cache.get():17
    T1 fork T3

Fields are whitespace-separated: thread id, operation, target (omitted
for ``begin``/``end``), and an optional source location. Operations are
the short names of :class:`~repro.core.events.EventKind` (``rd``, ``wr``,
``acq``, ``rel``, ``fork``, ``join``, ``begin``, ``end``, ``vwr``,
``vrd``). This is the interchange format accepted by the CLI, so traces
collected from other tools can be vindicated offline.
"""

from __future__ import annotations

import io
from pathlib import Path
from typing import TextIO, Union

from repro.core.events import Event, EventKind
from repro.core.exceptions import TraceFormatError
from repro.core.trace import Trace

_KIND_BY_NAME = {kind.value: kind for kind in EventKind}
_NO_TARGET = (EventKind.BEGIN, EventKind.END)


def dump_trace(trace: Trace, target: Union[str, Path, TextIO]) -> None:
    """Write ``trace`` in the text format to a path or open file."""
    if isinstance(target, (str, Path)):
        with open(target, "w", encoding="utf-8") as handle:
            _write(trace, handle)
    else:
        _write(trace, target)


def dumps_trace(trace: Trace) -> str:
    """The text-format rendering of ``trace``."""
    buffer = io.StringIO()
    _write(trace, buffer)
    return buffer.getvalue()


def _write(trace: Trace, handle: TextIO) -> None:
    handle.write("# repro trace: {} events, {} threads\n".format(
        len(trace), len(trace.threads)))
    for e in trace:
        parts = [str(e.tid), e.kind.value]
        if e.kind not in _NO_TARGET:
            parts.append(str(e.target))
        if e.loc is not None:
            parts.append(str(e.loc))
        handle.write(" ".join(parts) + "\n")


def load_trace(source: Union[str, Path, TextIO], validate: bool = True) -> Trace:
    """Parse a text-format trace from a path or open file."""
    if isinstance(source, (str, Path)):
        with open(source, "r", encoding="utf-8") as handle:
            return _read(handle, validate)
    return _read(source, validate)


def loads_trace(text: str, validate: bool = True) -> Trace:
    """Parse a text-format trace from a string."""
    return _read(io.StringIO(text), validate)


def _read(handle: TextIO, validate: bool) -> Trace:
    events = []
    for number, raw in enumerate(handle, start=1):
        line = raw.strip()
        if not line or line.startswith("#"):
            continue
        parts = line.split(None, 3)
        if len(parts) < 2:
            raise TraceFormatError("expected '<tid> <op> [target] [loc]'",
                                   line_number=number)
        tid, op = parts[0], parts[1]
        kind = _KIND_BY_NAME.get(op)
        if kind is None:
            raise TraceFormatError(f"unknown operation {op!r}", line_number=number)
        if kind in _NO_TARGET:
            target = None
            loc = parts[2] if len(parts) > 2 else None
            if len(parts) > 3:
                loc = f"{parts[2]} {parts[3]}"
        else:
            if len(parts) < 3:
                raise TraceFormatError(f"operation {op!r} needs a target",
                                       line_number=number)
            target = parts[2]
            loc = parts[3] if len(parts) > 3 else None
        events.append(Event(len(events), tid, kind, target, loc))
    try:
        return Trace(events, validate=validate)
    except Exception as exc:
        raise TraceFormatError(f"structurally invalid trace: {exc}") from exc

"""Plain-text trace format: reading and writing execution traces.

The format is line-oriented, one event per line, in trace order::

    # comments and blank lines are ignored
    T1 wr x    Loader.load():42
    T1 acq m
    T2 rd x    Cache.get():17
    T1 fork T3

Fields are whitespace-separated: thread id, operation, target (omitted
for ``begin``/``end``), and an optional source location. Operations are
the short names of :class:`~repro.core.events.EventKind` (``rd``, ``wr``,
``acq``, ``rel``, ``fork``, ``join``, ``begin``, ``end``, ``vwr``,
``vrd``). This is the interchange format accepted by the CLI, so traces
collected from other tools can be vindicated offline.
"""

from __future__ import annotations

import io
from pathlib import Path
from typing import List, Optional, TextIO, Tuple, Union

from repro.core.events import Event, EventKind, Tid
from repro.core.exceptions import MalformedTraceError, TraceFormatError
from repro.core.trace import Trace

_KIND_BY_NAME = {kind.value: kind for kind in EventKind}
_NO_TARGET = (EventKind.BEGIN, EventKind.END)
_THREAD_TARGET = (EventKind.FORK, EventKind.JOIN)


def _parse_tid(token: str) -> Tid:
    """``T1``/``t1``/``1`` -> 1; anything else stays an opaque string.

    Normalising here makes the format round-trip: :func:`_write` renders
    integer tids as ``T<n>`` (the documented spelling), and
    ``Event.__str__``'s own ``T`` prefix then shows ``@T1``, not ``@TT1``.
    """
    if token[:1] in ("T", "t") and token[1:].isdigit():
        return int(token[1:])
    if token.isdigit():
        return int(token)
    return token


def _format_tid(tid: Tid) -> str:
    return f"T{tid}" if isinstance(tid, int) else str(tid)


def dump_trace(trace: Trace, target: Union[str, Path, TextIO]) -> None:
    """Write ``trace`` in the text format to a path or open file."""
    if isinstance(target, (str, Path)):
        with open(target, "w", encoding="utf-8") as handle:
            _write(trace, handle)
    else:
        _write(trace, target)


def dumps_trace(trace: Trace) -> str:
    """The text-format rendering of ``trace``."""
    buffer = io.StringIO()
    _write(trace, buffer)
    return buffer.getvalue()


def format_event(e: Event) -> str:
    """One event as a text-format line (without the newline).

    The inverse of :func:`parse_event_line`; streaming clients use this
    to frame events for the serve protocol's ``events`` op.
    """
    parts = [_format_tid(e.tid), e.kind.value]
    if e.kind in _THREAD_TARGET:
        parts.append(_format_tid(e.target))
    elif e.kind not in _NO_TARGET:
        parts.append(str(e.target))
    if e.loc is not None:
        parts.append(str(e.loc))
    return " ".join(parts)


def _write(trace: Trace, handle: TextIO) -> None:
    handle.write("# repro trace: {} events, {} threads\n".format(
        len(trace), len(trace.threads)))
    for e in trace:
        handle.write(format_event(e) + "\n")


def load_trace(source: Union[str, Path, TextIO], validate: bool = True) -> Trace:
    """Parse a text-format trace from a path or open file."""
    if isinstance(source, (str, Path)):
        with open(source, "r", encoding="utf-8") as handle:
            trace = _read(handle, validate)
        trace.provenance = {"kind": "file", "path": str(source)}
        return trace
    return _read(source, validate)


def loads_trace(text: str, validate: bool = True) -> Trace:
    """Parse a text-format trace from a string."""
    return _read(io.StringIO(text), validate)


def load_events(source: Union[str, Path, TextIO]) -> Tuple[List[Event], List[int]]:
    """Parse a text-format trace into raw events, skipping all structural
    validation (no :class:`Trace` is built).

    Returns ``(events, line_numbers)`` — parallel lists mapping each
    event to its 1-based source line. This is the entry point for tools
    that must accept malformed traces, like ``vindicator lint``.
    """
    if isinstance(source, (str, Path)):
        with open(source, "r", encoding="utf-8") as handle:
            return _parse(handle)
    return _parse(source)


def parse_event_line(line: str, *, eid: int, line_number: int = -1) -> Optional[Event]:
    """Parse one text-format line into an :class:`Event` with id ``eid``.

    Returns ``None`` for blank lines and ``#`` comments. Raises
    :class:`TraceFormatError` (carrying ``line_number``) for anything
    that is not a well-formed event line. This is the single-line entry
    point used both by file parsing here and by the streaming service,
    which receives one line per frame from untrusted clients.
    """
    line = line.strip()
    if not line or line.startswith("#"):
        return None
    parts = line.split(None, 3)
    if len(parts) < 2:
        raise TraceFormatError("expected '<tid> <op> [target] [loc]'",
                               line_number=line_number)
    tid, op = _parse_tid(parts[0]), parts[1]
    kind = _KIND_BY_NAME.get(op)
    if kind is None:
        raise TraceFormatError(f"unknown operation {op!r}", line_number=line_number)
    target: object
    if kind in _NO_TARGET:
        target = None
        loc = parts[2] if len(parts) > 2 else None
        if len(parts) > 3:
            loc = f"{parts[2]} {parts[3]}"
    else:
        if len(parts) < 3:
            raise TraceFormatError(f"operation {op!r} needs a target",
                                   line_number=line_number)
        target = (_parse_tid(parts[2]) if kind in _THREAD_TARGET
                  else parts[2])
        loc = parts[3] if len(parts) > 3 else None
    return Event(eid, tid, kind, target, loc)


def _parse(handle: TextIO) -> Tuple[List[Event], List[int]]:
    events: List[Event] = []
    line_numbers: List[int] = []
    for number, raw in enumerate(handle, start=1):
        event = parse_event_line(raw, eid=len(events), line_number=number)
        if event is None:
            continue
        events.append(event)
        line_numbers.append(number)
    return events, line_numbers


def _read(handle: TextIO, validate: bool) -> Trace:
    events, line_numbers = _parse(handle)
    try:
        return Trace(events, validate=validate)
    except MalformedTraceError as exc:
        # Map the failing event back to its source line so the error is
        # actionable for whoever logged the trace (the structural check
        # reports an *event index*, which the file's comments and blank
        # lines shift away from the line number).
        line = -1
        if 0 <= exc.event_index < len(line_numbers):
            line = line_numbers[exc.event_index]
        raise TraceFormatError(f"structurally invalid trace: {exc}",
                               line_number=line) from exc
    except Exception as exc:
        raise TraceFormatError(f"structurally invalid trace: {exc}") from exc

"""Greedy delta-debugging minimiser for execution traces.

Given a trace and a predicate (e.g. "the Vindicator refutes a DC-race on
this trace with a constraint cycle"), the minimiser removes events while
the predicate keeps holding, yielding small witness executions. It was
used to distil this library's litmus reconstructions of the paper's
Figures 3–4 and Appendix C examples from randomly generated traces, and
is exported because shrinking a counterexample trace is broadly useful
when debugging a detector.

Removal keeps traces structurally valid: deleting an acquire also
deletes everything the critical section would orphan (its release),
deleting a fork deletes the forked thread's events and its join, and so
on — implemented simply by *closure*: a candidate removal set is grown
until re-validation succeeds, and the predicate is consulted on the
closed result.
"""

from __future__ import annotations

from typing import Callable, List, Optional, Sequence

from repro.core.events import Event, EventKind
from repro.core.exceptions import MalformedTraceError
from repro.core.trace import Trace


def _try_build(events: Sequence[Event]) -> Optional[Trace]:
    try:
        return Trace.from_events(events)
    except MalformedTraceError:
        return None


def _removal_closure(events: List[Event], index: int) -> Optional[List[Event]]:
    """Remove ``events[index]`` plus whatever is needed for validity.

    Returns the surviving events or None when no valid closure exists.
    """
    victim = events[index]
    drop = {id(victim)}
    if victim.kind is EventKind.ACQUIRE:
        # Drop the matching release: first same-thread same-lock release
        # after the acquire.
        depth = 0
        for e in events[index + 1:]:
            if e.tid != victim.tid or e.target != victim.target:
                continue
            if e.kind is EventKind.ACQUIRE:
                depth += 1
            elif e.kind is EventKind.RELEASE:
                if depth == 0:
                    drop.add(id(e))
                    break
                depth -= 1
    elif victim.kind is EventKind.RELEASE:
        # Drop the matching acquire.
        depth = 0
        for e in reversed(events[:index]):
            if e.tid != victim.tid or e.target != victim.target:
                continue
            if e.kind is EventKind.RELEASE:
                depth += 1
            elif e.kind is EventKind.ACQUIRE:
                if depth == 0:
                    drop.add(id(e))
                    break
                depth -= 1
    elif victim.kind is EventKind.FORK:
        drop.update(id(e) for e in events if e.tid == victim.target)
        drop.update(id(e) for e in events
                    if e.kind is EventKind.JOIN and e.target == victim.target)
    elif victim.kind is EventKind.BEGIN or victim.kind is EventKind.END:
        pass
    survivors = [e for e in events if id(e) not in drop]
    if _try_build(survivors) is None:
        return None
    return survivors


def minimize_trace(trace: Trace, predicate: Callable[[Trace], bool],
                   max_passes: int = 10) -> Trace:
    """Shrink ``trace`` while ``predicate`` holds.

    The predicate must hold for the input trace. Runs repeated
    single-event-removal passes (with validity closure) until a fixpoint
    or ``max_passes``. Deterministic: removal is attempted left to right.
    """
    if not predicate(trace):
        raise ValueError("predicate does not hold for the input trace")
    events = list(trace.events)
    for _ in range(max_passes):
        shrunk = False
        i = 0
        while i < len(events):
            survivors = _removal_closure(events, i)
            if survivors is not None and len(survivors) < len(events):
                candidate = Trace.from_events(survivors)
                if predicate(candidate):
                    events = list(candidate.events)
                    shrunk = True
                    continue  # retry same index (new event there now)
            i += 1
        if not shrunk:
            break
    return Trace.from_events(events)

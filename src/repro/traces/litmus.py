"""Litmus traces: the paper's example executions.

Figures 1(a) and 2(a) are transcribed exactly from the paper's text. The
paper's remaining example executions (Figure 3(a), Figures 4(a)/4(b),
and the Appendix C executions) appear only as images that are
unavailable in the source text, so this module provides
*behaviour-equivalent reconstructions*: small executions — found by
random search plus delta-debugging minimisation
(:mod:`repro.traces.minimize`) and validated against the brute-force
oracle — that exhibit exactly the properties the paper ascribes to the
originals:

* :func:`figure3` — a *DC-only* race (a DC-race that is not a WCP-race)
  that is a true predictable race and whose vindication must add a
  lock-semantics constraint;
* :func:`retry_case` — a DC-only true race whose witness construction
  stalls on a release outside the needed set, exercising the paper's
  "Retrying construction" path (ATTEMPTTOCONSTRUCTTRACE returns a
  missing release and is called again);
* :func:`figure4a` — a *false* DC-race: AddConstraints derives a
  constraint cycle through two critical sections on one lock (the
  paper's Figure 5(b) scenario) and VindicateRace answers *no race*;
* :func:`figure4b` — a false DC-race refuted by a cycle through
  conflicting-access constraints alone (no locks involved).

The false races in :func:`figure4a`/:func:`figure4b` are *dependent* on
earlier races in the trace, so they surface only under component-only
race forcing (``transitive_force=False`` on the detectors or the
:class:`~repro.vindicate.vindicator.Vindicator`); with the default
transitive forcing the detector itself suppresses them, matching the
paper's experience that every reported DC-race was a true race.
Additionally:
* :func:`appendix_c_greedy` — an execution where the greedy
  latest-in-trace-order choice constructs a witness while the
  ``earliest`` policy fails (*don't know*), demonstrating both the
  paper's key greedy insight and the constructor's incompleteness;
* :func:`wcp_deadlock` — a hand-crafted WCP-race that is a predictable
  *deadlock* rather than a predictable race: VindicateRace refutes it
  with a cycle of pure lock-semantics constraints (no prior races
  involved), exhibiting WCP's soundness caveat.

* :func:`appendix_c_incomplete` — an execution where the *latest*
  policy itself fails (*don't know*) on a true race that other policies
  and the oracle can witness: the greedy constructor's incompleteness,
  exactly as Appendix C describes.

One Appendix C behaviour — a constraint graph that stays acyclic even
though no predictable race exists — did not occur in ~150,000 random
traces (such executions require intricately crossed critical-section
dependencies; the closest shape, :func:`wcp_deadlock`, is caught by a
constraint cycle instead). This matches the paper's own report that its
experiments encountered only acyclic graphs that all vindicated.

Each function returns a fresh :class:`~repro.core.trace.Trace`.
"""

from __future__ import annotations

from repro.core.trace import Trace, TraceBuilder


def figure1() -> Trace:
    """Figure 1(a): no HB-race, but a WCP-race and a predictable race
    between ``wr(x)`` (event 0) and ``rd(x)`` (event 7)."""
    return (TraceBuilder()
            .wr(1, "x")
            .acq(1, "m")
            .wr(1, "z")
            .rel(1, "m")
            .acq(2, "m")
            .rd(2, "y")
            .rel(2, "m")
            .rd(2, "x")
            .build())


def figure2() -> Trace:
    """Figure 2(a): no WCP-race, but a DC-race and a predictable race
    between ``wr(x)`` (event 0) and ``rd(x)`` (event 11). Exposing the
    race requires the critical sections on ``m`` to run in the opposite
    order, which WCP's composition with synchronisation order forbids.

    VindicateRace adds exactly one consecutive-event constraint (from
    ``rd(x)``'s predecessor ``rel(m)`` to ``wr(x)``) and no LS
    constraints — the paper's Figure 5(a) walk-through."""
    return (TraceBuilder()
            .wr(1, "x")
            .acq(1, "o")
            .wr(1, "y")
            .rel(1, "o")
            .acq(2, "o")
            .rd(2, "y")
            .rel(2, "o")
            .acq(2, "m")
            .rel(2, "m")
            .acq(3, "m")
            .rel(3, "m")
            .rd(3, "x")
            .build())


def figure3() -> Trace:
    """A Figure 3(a)-equivalent execution (reconstruction).

    The race between ``wr(x)`` (event 3) and ``rd(x)`` (event 8) is a
    DC-race but not a WCP-race, it is a true predictable race, and its
    vindication must add a lock-semantics constraint to fully order the
    critical sections on ``m`` (checked in ``tests/test_litmus.py``).
    The trace also contains an incidental HB-race on ``x`` (events 3
    and 4), whose forced ordering the DC-only race depends on."""
    return (TraceBuilder()
            .acq(1, "m")
            .acq(2, "l")
            .rel(2, "l")
            .wr(2, "x")     # 3: e1 of the DC-only race
            .rd(1, "x")     # 4: HB-races with event 3
            .rel(1, "m")
            .acq(3, "l")
            .acq(3, "m")
            .rd(3, "x")     # 8: e2 of the DC-only race
            .rel(3, "m")
            .rel(3, "l")
            .build())


def retry_case() -> Trace:
    """A DC-only predictable race whose witness construction needs the
    missing-release retry (CONSTRUCTREORDEREDTRACE calls
    ATTEMPTTOCONSTRUCTTRACE twice) — the paper's Section 5.3
    "Retrying construction" scenario, reconstructed.

    The DC-only race is between ``wr(x)`` (event 2) and ``rd(x)``
    (event 10)."""
    return (TraceBuilder()
            .acq(2, "m")
            .wr(2, "x")
            .wr(1, "x")     # 2: e1 of the DC-only race
            .rel(2, "m")
            .acq(2, "m")
            .wr(1, "y")
            .wr(2, "y")
            .rel(2, "m")
            .acq(3, "m")
            .rel(3, "m")
            .rd(3, "x")     # 10: e2 of the DC-only race
            .build())


def figure4a() -> Trace:
    """A Figure 4(a)-equivalent execution (reconstruction): the DC-race
    between ``wr(x)`` (event 2) and ``wr(x)`` (event 7) is *not* a
    predictable race — AddConstraints derives a constraint cycle through
    the two critical sections on ``m`` (one LS constraint is added
    before the cycle closes, the paper's Figure 5(b) mechanics)."""
    return (TraceBuilder()
            .acq(3, "m")
            .rel(3, "m")
            .wr(1, "x")     # 2: e1 of the false race
            .rd(3, "x")
            .acq(2, "m")
            .wr(3, "y")
            .wr(2, "y")
            .wr(2, "x")     # 7: e2 of the false race
            .rel(2, "m")
            .build())


def figure4b() -> Trace:
    """A Figure 4(b)-equivalent execution (reconstruction): a false
    DC-race — between ``wr(x)`` (event 0) and ``rd(x)`` (event 4) —
    refuted by a cycle arising purely from conflicting-access
    constraints (no locks at all): the reordered trace would need
    event 4's prefix both before and after event 0."""
    return (TraceBuilder()
            .wr(2, "x")     # 0: e1 of the false race
            .rd(1, "x")
            .rd(1, "y")
            .wr(3, "y")
            .rd(3, "x")     # 4: e2 of the false race
            .build())


def appendix_c_greedy() -> Trace:
    """An Appendix C-equivalent execution (reconstruction): witness
    construction for the race between ``rd(x)`` (event 6) and ``wr(x)``
    (event 7) succeeds under the paper's latest-in-trace-order greedy
    policy but fails (*don't know*) under the ``earliest`` policy."""
    return (TraceBuilder()
            .acq(1, "m")
            .wr(1, "p")
            .wr(2, "p")
            .rel(1, "m")
            .acq(2, "m")
            .wr(2, "x")     # 5: e1 of the policy-sensitive race
            .rd(3, "x")     # 6: e2
            .wr(1, "x")
            .rel(2, "m")
            .build())


def appendix_c_incomplete() -> Trace:
    """An Appendix C-equivalent execution (reconstruction): the greedy
    latest-in-trace-order construction answers *don't know* for the race
    between ``rd(x)`` (event 10) and ``wr(x)`` (event 11), although the
    race is real (the exhaustive oracle finds a witness; the
    ``earliest`` policy also finds one) — the paper's example that
    CONSTRUCTREORDEREDTRACE "fails by always choosing the latest event,
    yet a correctly reordered trace is feasible" (Section 5.3)."""
    return (TraceBuilder()
            .acq(5, "m")
            .wr(5, "x")
            .rd(4, "x")
            .rel(5, "m")
            .acq(4, "m")
            .rd(4, "y")
            .rel(4, "m")
            .acq(1, "m")
            .wr(3, "y")
            .rd(1, "x")
            .rd(3, "x")     # 10: e1 of the policy-sensitive race
            .wr(2, "x")     # 11: e2
            .rel(1, "m")
            .build())


def wcp_deadlock() -> Trace:
    """A WCP-race that is a predictable *deadlock*, not a predictable
    race (hand-crafted; Section 5.3's deadlock discussion).

    Each thread nests the locks in opposite orders, and each racy access
    happens inside the outer critical section after the inner one closed
    — so the accesses share no lock (a WCP- and DC-race), yet making
    them consecutive requires each thread's closed inner section to fit
    inside the other's still-open outer section: the crossed-lock-order
    deadlock. VindicateRace refutes the race through a constraint cycle
    built purely from lock-semantics constraints (no earlier races
    involved), while the oracle confirms ``has_predictable_deadlock()``
    — exhibiting WCP's soundness caveat (a WCP-race implies a
    predictable race *or deadlock*) and the paper's note that
    VINDICATERACE "will not report predictable deadlocks"."""
    return (TraceBuilder()
            .acq(1, "m")
            .acq(1, "n")
            .rel(1, "n")
            .wr(1, "x")     # 3: e1 — T1 holds only m here
            .rel(1, "m")
            .acq(2, "n")
            .acq(2, "m")
            .rel(2, "m")
            .rd(2, "x")     # 8: e2 — T2 holds only n here
            .rel(2, "n")
            .build())


#: All litmus traces by name (used by tests, examples, and the CLI).
ALL = {
    "figure1": figure1,
    "figure2": figure2,
    "figure3": figure3,
    "retry_case": retry_case,
    "figure4a": figure4a,
    "figure4b": figure4b,
    "appendix_c_greedy": appendix_c_greedy,
    "appendix_c_incomplete": appendix_c_incomplete,
    "wcp_deadlock": wcp_deadlock,
}

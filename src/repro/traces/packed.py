"""Columnar packed encoding of a :class:`~repro.core.trace.Trace`.

The parallel engine (:mod:`repro.parallel`) ships the trace to worker
processes once per pool. Pickling a ``Trace`` directly serialises one
``Event`` object per trace event — tens of thousands of small dataclass
records plus their per-event strings — which dominates worker start-up
cost. :class:`PackedTrace` stores the same information columnarly:

* ``kinds`` — one byte per event, an index into the fixed
  :class:`~repro.core.events.EventKind` order;
* ``tid_idx`` / ``target_idx`` / ``loc_idx`` — per-event indices into
  small first-appearance interning tables (``-1`` encodes ``None``);
* ``local_time`` — the thread-local 1-based time of each event, so
  array-level consumers can use per-thread positions without
  materialising a ``Trace`` at all;
* the interning tables themselves (one entry per distinct thread id,
  target, and source location) and the trace's provenance dict.

The columns are :class:`array.array` instances, which pickle as flat
machine-typed buffers, so a packed trace crosses a process boundary as a
handful of contiguous blobs. :func:`pack` / :meth:`PackedTrace.unpack`
round-trip exactly: event ids, thread ids, kinds, targets, source
locations, and provenance are all preserved, and unpacking skips
re-validation because the source trace was validated when first built.
"""

from __future__ import annotations

from array import array
from dataclasses import dataclass, field
from typing import Dict, Hashable, List, Optional, Tuple, TypeVar

_T = TypeVar("_T", bound=Hashable)

from repro.core.events import Event, EventKind, Target, Tid
from repro.core.trace import Trace

#: The fixed kind numbering used by the ``kinds`` column. Index in this
#: tuple == byte value; both sides of a process boundary run the same
#: code, so the enum definition order is a stable contract.
KIND_ORDER: Tuple[EventKind, ...] = tuple(EventKind)

_KIND_CODE: Dict[EventKind, int] = {kind: i for i, kind in enumerate(KIND_ORDER)}


@dataclass
class PackedTrace:
    """A trace as columnar arrays plus interning tables.

    Build with :func:`pack`; restore with :meth:`unpack`. The instance
    is picklable and its payload size is dominated by the four
    fixed-width columns, not by per-event Python objects.
    """

    #: Per-event :data:`KIND_ORDER` index (``array('B')``).
    kinds: "array[int]"
    #: Per-event index into :attr:`tids` (``array('I')``).
    tid_idx: "array[int]"
    #: Per-event index into :attr:`targets`, ``-1`` for ``None``
    #: (``array('i')``).
    target_idx: "array[int]"
    #: Per-event index into :attr:`locs`, ``-1`` for ``None``
    #: (``array('i')``).
    loc_idx: "array[int]"
    #: Per-event thread-local 1-based time (``array('I')``), mirroring
    #: :attr:`repro.core.trace.Trace.local_time`.
    local_time: "array[int]"
    #: Distinct thread ids in order of first appearance.
    tids: List[Tid]
    #: Distinct non-``None`` targets in order of first appearance.
    targets: List[Target]
    #: Distinct non-``None`` source locations in order of first appearance.
    locs: List[str]
    #: Copied from :attr:`repro.core.trace.Trace.provenance`.
    provenance: Dict[str, object] = field(default_factory=dict)

    def __len__(self) -> int:
        return len(self.kinds)

    def nbytes(self) -> int:
        """Total size of the fixed-width columns in bytes (the
        interning tables are small and excluded)."""
        return sum(
            len(column) * column.itemsize
            for column in (self.kinds, self.tid_idx, self.target_idx,
                           self.loc_idx, self.local_time)
        )

    def unpack(self) -> Trace:
        """Rebuild the original :class:`~repro.core.trace.Trace`.

        Validation is skipped: the packed form can only come from
        :func:`pack`, whose input was already validated.
        """
        tids = self.tids
        targets = self.targets
        locs = self.locs
        target_idx = self.target_idx
        loc_idx = self.loc_idx
        events: List[Event] = []
        for eid, (code, tid_i) in enumerate(zip(self.kinds, self.tid_idx)):
            t_i = target_idx[eid]
            l_i = loc_idx[eid]
            events.append(Event(
                eid,
                tids[tid_i],
                KIND_ORDER[code],
                None if t_i < 0 else targets[t_i],
                None if l_i < 0 else locs[l_i],
            ))
        trace = Trace(events, validate=False)
        trace.provenance = dict(self.provenance)
        return trace


def pack(trace: Trace) -> PackedTrace:
    """Encode ``trace`` as a :class:`PackedTrace`."""
    kinds = array("B")
    tid_idx = array("I")
    target_idx = array("i")
    loc_idx = array("i")
    tids: List[Tid] = []
    targets: List[Target] = []
    locs: List[str] = []
    tid_table: Dict[Tid, int] = {}
    target_table: Dict[Target, int] = {}
    loc_table: Dict[str, int] = {}
    for e in trace.events:
        kinds.append(_KIND_CODE[e.kind])
        tid_i = tid_table.get(e.tid)
        if tid_i is None:
            tid_i = tid_table[e.tid] = len(tids)
            tids.append(e.tid)
        tid_idx.append(tid_i)
        target_idx.append(_intern(e.target, target_table, targets))
        loc_idx.append(_intern(e.loc, loc_table, locs))
    return PackedTrace(
        kinds=kinds,
        tid_idx=tid_idx,
        target_idx=target_idx,
        loc_idx=loc_idx,
        local_time=array("I", trace.local_time),
        tids=tids,
        targets=targets,
        locs=locs,
        provenance=dict(trace.provenance),
    )


def _intern(value: Optional[_T], table: Dict[_T, int], pool: List[_T]) -> int:
    """First-appearance interning: return ``value``'s index in ``pool``,
    appending it on first sight; ``None`` encodes as ``-1``."""
    if value is None:
        return -1
    index = table.get(value)
    if index is None:
        index = table[value] = len(pool)
        pool.append(value)
    return index

"""Columnar packed encoding of a :class:`~repro.core.trace.Trace`.

The parallel engine (:mod:`repro.parallel`) ships the trace to worker
processes once per pool. Pickling a ``Trace`` directly serialises one
``Event`` object per trace event — tens of thousands of small dataclass
records plus their per-event strings — which dominates worker start-up
cost. :class:`PackedTrace` stores the same information columnarly:

* ``kinds`` — one byte per event, an index into the fixed
  :class:`~repro.core.events.EventKind` order;
* ``tid_idx`` / ``target_idx`` / ``loc_idx`` — per-event indices into
  small first-appearance interning tables (``-1`` encodes ``None``);
* ``local_time`` — the thread-local 1-based time of each event, so
  array-level consumers can use per-thread positions without
  materialising a ``Trace`` at all;
* the interning tables themselves (one entry per distinct thread id,
  target, and source location) and the trace's provenance dict.

The columns are :class:`array.array` instances, which pickle as flat
machine-typed buffers, so a packed trace crosses a process boundary as a
handful of contiguous blobs. :func:`pack` / :meth:`PackedTrace.unpack`
round-trip exactly: event ids, thread ids, kinds, targets, source
locations, and provenance are all preserved, and unpacking skips
re-validation because the source trace was validated when first built.

Beyond the process-boundary use, this module is the persistence layer
for the streaming service (:mod:`repro.serve`):

* :class:`PackedBuilder` appends events one at a time, so a live
  session keeps only the columns (~17 bytes/event) instead of Event
  objects;
* :meth:`PackedTrace.to_bytes` / :func:`packed_from_bytes` are a
  *canonical* byte encoding (fixed little-endian columns + sorted-key
  JSON header) used by checkpoints — encode→decode→encode is
  byte-stable, and decoding validates untrusted input, surfacing
  truncation or corruption as :class:`MalformedTraceError` with the
  offending event index;
* :class:`TraceHasher` is the running determinism hash over the event
  stream. It is updated per event, so its digest is invariant to how
  the stream was chunked — a resumed session that replays a checkpoint
  and reaches the same digest provably saw the same events.
"""

from __future__ import annotations

import hashlib
import json
import sys
from array import array
from dataclasses import dataclass, field
from typing import Dict, Hashable, Iterable, List, Optional, Tuple, TypeVar

_T = TypeVar("_T", bound=Hashable)

from repro.core.events import Event, EventKind, Target, Tid
from repro.core.exceptions import MalformedTraceError
from repro.core.trace import Trace

#: The fixed kind numbering used by the ``kinds`` column. Index in this
#: tuple == byte value; both sides of a process boundary run the same
#: code, so the enum definition order is a stable contract.
KIND_ORDER: Tuple[EventKind, ...] = tuple(EventKind)

_KIND_CODE: Dict[EventKind, int] = {kind: i for i, kind in enumerate(KIND_ORDER)}


@dataclass
class PackedTrace:
    """A trace as columnar arrays plus interning tables.

    Build with :func:`pack`; restore with :meth:`unpack`. The instance
    is picklable and its payload size is dominated by the four
    fixed-width columns, not by per-event Python objects.
    """

    #: Per-event :data:`KIND_ORDER` index (``array('B')``).
    kinds: "array[int]"
    #: Per-event index into :attr:`tids` (``array('I')``).
    tid_idx: "array[int]"
    #: Per-event index into :attr:`targets`, ``-1`` for ``None``
    #: (``array('i')``).
    target_idx: "array[int]"
    #: Per-event index into :attr:`locs`, ``-1`` for ``None``
    #: (``array('i')``).
    loc_idx: "array[int]"
    #: Per-event thread-local 1-based time (``array('I')``), mirroring
    #: :attr:`repro.core.trace.Trace.local_time`.
    local_time: "array[int]"
    #: Distinct thread ids in order of first appearance.
    tids: List[Tid]
    #: Distinct non-``None`` targets in order of first appearance.
    targets: List[Target]
    #: Distinct non-``None`` source locations in order of first appearance.
    locs: List[str]
    #: Copied from :attr:`repro.core.trace.Trace.provenance`.
    provenance: Dict[str, object] = field(default_factory=dict)

    def __len__(self) -> int:
        return len(self.kinds)

    def nbytes(self) -> int:
        """Total size of the fixed-width columns in bytes (the
        interning tables are small and excluded)."""
        return sum(
            len(column) * column.itemsize
            for column in (self.kinds, self.tid_idx, self.target_idx,
                           self.loc_idx, self.local_time)
        )

    def unpack(self) -> Trace:
        """Rebuild the original :class:`~repro.core.trace.Trace`.

        Validation is skipped: the packed form can only come from
        :func:`pack`, whose input was already validated.
        """
        tids = self.tids
        targets = self.targets
        locs = self.locs
        target_idx = self.target_idx
        loc_idx = self.loc_idx
        events: List[Event] = []
        for eid, (code, tid_i) in enumerate(zip(self.kinds, self.tid_idx)):
            t_i = target_idx[eid]
            l_i = loc_idx[eid]
            events.append(Event(
                eid,
                tids[tid_i],
                KIND_ORDER[code],
                None if t_i < 0 else targets[t_i],
                None if l_i < 0 else locs[l_i],
            ))
        trace = Trace(events, validate=False)
        trace.provenance = dict(self.provenance)
        return trace


def pack(trace: Trace) -> PackedTrace:
    """Encode ``trace`` as a :class:`PackedTrace`."""
    kinds = array("B")
    tid_idx = array("I")
    target_idx = array("i")
    loc_idx = array("i")
    tids: List[Tid] = []
    targets: List[Target] = []
    locs: List[str] = []
    tid_table: Dict[Tid, int] = {}
    target_table: Dict[Target, int] = {}
    loc_table: Dict[str, int] = {}
    for e in trace.events:
        kinds.append(_KIND_CODE[e.kind])
        tid_i = tid_table.get(e.tid)
        if tid_i is None:
            tid_i = tid_table[e.tid] = len(tids)
            tids.append(e.tid)
        tid_idx.append(tid_i)
        target_idx.append(_intern(e.target, target_table, targets))
        loc_idx.append(_intern(e.loc, loc_table, locs))
    return PackedTrace(
        kinds=kinds,
        tid_idx=tid_idx,
        target_idx=target_idx,
        loc_idx=loc_idx,
        local_time=array("I", trace.local_time),
        tids=tids,
        targets=targets,
        locs=locs,
        provenance=dict(trace.provenance),
    )


def _intern(value: Optional[_T], table: Dict[_T, int], pool: List[_T]) -> int:
    """First-appearance interning: return ``value``'s index in ``pool``,
    appending it on first sight; ``None`` encodes as ``-1``."""
    if value is None:
        return -1
    index = table.get(value)
    if index is None:
        index = table[value] = len(pool)
        pool.append(value)
    return index


# --------------------------------------------------------------------------
# Determinism hash
# --------------------------------------------------------------------------

def event_fingerprint(e: Event) -> bytes:
    """Canonical byte fingerprint of one event.

    ``repr`` disambiguates value collisions across types (thread id
    ``1`` vs target ``"1"``); ``loc`` is included even though ``Event``
    equality ignores it, because the checkpoint must attest to the full
    stream the client sent.
    """
    return "\x1f".join((
        str(e.eid), repr(e.tid), e.kind.name, repr(e.target), repr(e.loc),
    )).encode("utf-8") + b"\x1e"


class TraceHasher:
    """Running SHA-256 over a stream of events.

    The digest is a pure function of the event *sequence*: feeding the
    same events in the same order yields the same digest no matter how
    the stream was split into chunks, which is what lets a resumed
    session prove it matches an uninterrupted run.
    """

    __slots__ = ("_sha", "count")

    def __init__(self) -> None:
        self._sha = hashlib.sha256(b"vindicator-trace/1\n")
        #: Number of events hashed so far.
        self.count = 0

    def update(self, e: Event) -> None:
        self._sha.update(event_fingerprint(e))
        self.count += 1

    def hexdigest(self) -> str:
        return self._sha.hexdigest()

    def copy(self) -> "TraceHasher":
        clone = TraceHasher.__new__(TraceHasher)
        clone._sha = self._sha.copy()
        clone.count = self.count
        return clone


def trace_hash(events: Iterable[Event]) -> str:
    """Digest of a complete event sequence (the single-shot reference
    against which streamed/resumed sessions compare)."""
    hasher = TraceHasher()
    for e in events:
        hasher.update(e)
    return hasher.hexdigest()


# --------------------------------------------------------------------------
# Appendable builder (streaming ingestion)
# --------------------------------------------------------------------------

class PackedBuilder:
    """Appendable :class:`PackedTrace` under construction.

    A live serve session appends each accepted event here instead of
    keeping ``Event`` objects: the retained state is the five columns
    (~17 bytes/event) plus the small interning tables. Feeding the same
    events that :func:`pack` would see produces bit-identical columns,
    because both use first-appearance interning and per-thread 1-based
    local times.
    """

    __slots__ = ("kinds", "tid_idx", "target_idx", "loc_idx", "local_time",
                 "tids", "targets", "locs", "provenance",
                 "_tid_table", "_target_table", "_loc_table", "_tid_counts")

    def __init__(self, provenance: Optional[Dict[str, object]] = None) -> None:
        self.kinds: "array[int]" = array("B")
        self.tid_idx: "array[int]" = array("I")
        self.target_idx: "array[int]" = array("i")
        self.loc_idx: "array[int]" = array("i")
        self.local_time: "array[int]" = array("I")
        self.tids: List[Tid] = []
        self.targets: List[Target] = []
        self.locs: List[str] = []
        self.provenance: Dict[str, object] = dict(provenance or {})
        self._tid_table: Dict[Tid, int] = {}
        self._target_table: Dict[Target, int] = {}
        self._loc_table: Dict[str, int] = {}
        self._tid_counts: Dict[Tid, int] = {}

    def __len__(self) -> int:
        return len(self.kinds)

    def nbytes(self) -> int:
        return sum(
            len(column) * column.itemsize
            for column in (self.kinds, self.tid_idx, self.target_idx,
                           self.loc_idx, self.local_time)
        )

    def append(self, e: Event) -> int:
        """Append one event; returns its thread-local 1-based time."""
        if e.eid != len(self.kinds):
            raise MalformedTraceError(
                "event id %r does not match stream position %d" % (e.eid, len(self.kinds)),
                event_index=len(self.kinds))
        self.kinds.append(_KIND_CODE[e.kind])
        tid_i = self._tid_table.get(e.tid)
        if tid_i is None:
            tid_i = self._tid_table[e.tid] = len(self.tids)
            self.tids.append(e.tid)
        self.tid_idx.append(tid_i)
        self.target_idx.append(_intern(e.target, self._target_table, self.targets))
        self.loc_idx.append(_intern(e.loc, self._loc_table, self.locs))
        local = self._tid_counts.get(e.tid, 0) + 1
        self._tid_counts[e.tid] = local
        self.local_time.append(local)
        return local

    def to_packed(self) -> PackedTrace:
        """Snapshot the current columns as an immutable :class:`PackedTrace`.

        Copies, so a checkpoint taken mid-stream is unaffected by later
        appends.
        """
        return PackedTrace(
            kinds=array("B", self.kinds),
            tid_idx=array("I", self.tid_idx),
            target_idx=array("i", self.target_idx),
            loc_idx=array("i", self.loc_idx),
            local_time=array("I", self.local_time),
            tids=list(self.tids),
            targets=list(self.targets),
            locs=list(self.locs),
            provenance=dict(self.provenance),
        )


# --------------------------------------------------------------------------
# Canonical byte encoding (checkpoints)
# --------------------------------------------------------------------------

#: Magic prefix of the canonical packed-trace byte encoding.
PACKED_MAGIC = b"VPKC1\n"

_COLUMN_LAYOUT: Tuple[Tuple[str, str], ...] = (
    ("kinds", "B"), ("tid_idx", "I"), ("target_idx", "i"),
    ("loc_idx", "i"), ("local_time", "I"),
)


def _column_bytes(column: "array[int]") -> bytes:
    """Column payload as little-endian bytes regardless of host order."""
    if sys.byteorder == "little" or column.itemsize == 1:
        return column.tobytes()
    swapped = array(column.typecode, column)  # pragma: no cover - big-endian
    swapped.byteswap()  # pragma: no cover - big-endian
    return swapped.tobytes()  # pragma: no cover - big-endian


def _column_from_bytes(typecode: str, data: bytes) -> "array[int]":
    column: "array[int]" = array(typecode)
    column.frombytes(data)
    if sys.byteorder != "little" and column.itemsize > 1:  # pragma: no cover
        column.byteswap()
    return column


def _json_table(name: str, values: List[object]) -> List[object]:
    for value in values:
        if not isinstance(value, (int, str)) or isinstance(value, bool):
            raise ValueError(
                "packed trace %s table entry %r is not serializable; the "
                "canonical byte encoding supports int and str identifiers" % (name, value))
    return values


def to_bytes(packed: PackedTrace) -> bytes:
    """Canonical byte encoding of ``packed``.

    Layout: magic, 4-byte little-endian header length, sorted-key JSON
    header (counts + interning tables + provenance), then the five raw
    little-endian columns in :data:`_COLUMN_LAYOUT` order. The encoding
    is canonical — ``to_bytes(from_bytes(b)) == b`` — so checkpoint
    bytes can be compared directly.
    """
    header = {
        "version": 1,
        "events": len(packed),
        "tids": _json_table("tids", list(packed.tids)),
        "targets": _json_table("targets", list(packed.targets)),
        "locs": _json_table("locs", list(packed.locs)),
        "provenance": packed.provenance,
    }
    try:
        header_bytes = json.dumps(
            header, sort_keys=True, separators=(",", ":"), allow_nan=False,
        ).encode("utf-8")
    except (TypeError, ValueError) as exc:
        raise ValueError("packed trace header is not JSON-serializable: %s" % exc) from exc
    parts = [PACKED_MAGIC, len(header_bytes).to_bytes(4, "little"), header_bytes]
    for attr, _typecode in _COLUMN_LAYOUT:
        parts.append(_column_bytes(getattr(packed, attr)))
    return b"".join(parts)


def _truncated(message: str, event_index: int = -1) -> MalformedTraceError:
    return MalformedTraceError("truncated packed trace: " + message, event_index=event_index)


def _header_list(header: Dict[str, object], key: str, str_only: bool) -> List[object]:
    values = header.get(key)
    if not isinstance(values, list):
        raise MalformedTraceError("packed trace header field %r is not a list" % key)
    for value in values:
        ok = isinstance(value, str) if str_only \
            else (isinstance(value, (int, str)) and not isinstance(value, bool))
        if not ok:
            raise MalformedTraceError(
                "packed trace header table %r has invalid entry %r" % (key, value))
    return values


def from_bytes(data: bytes) -> PackedTrace:
    """Decode (and validate) the canonical byte encoding.

    The input is untrusted — a partially written checkpoint, a corrupt
    file — so every failure mode surfaces as
    :class:`~repro.core.exceptions.MalformedTraceError`, with
    ``event_index`` set to the first affected event when the damage is
    inside the column region (truncation, out-of-range table index,
    unknown kind code, inconsistent local time).
    """
    if len(data) < len(PACKED_MAGIC) + 4:
        raise _truncated("missing magic/header length")
    if data[:len(PACKED_MAGIC)] != PACKED_MAGIC:
        raise MalformedTraceError("not a packed trace: bad magic %r" % data[:len(PACKED_MAGIC)])
    offset = len(PACKED_MAGIC)
    header_len = int.from_bytes(data[offset:offset + 4], "little")
    offset += 4
    if len(data) < offset + header_len:
        raise _truncated("header ends mid-stream")
    try:
        header_obj = json.loads(data[offset:offset + header_len].decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise MalformedTraceError("packed trace header is not valid JSON: %s" % exc) from exc
    offset += header_len
    if not isinstance(header_obj, dict):
        raise MalformedTraceError("packed trace header is not an object")
    header: Dict[str, object] = header_obj
    if header.get("version") != 1:
        raise MalformedTraceError(
            "unsupported packed trace version %r" % header.get("version"))
    count = header.get("events")
    if not isinstance(count, int) or isinstance(count, bool) or count < 0:
        raise MalformedTraceError("packed trace header field 'events' is not a count")
    tids = _header_list(header, "tids", str_only=False)
    targets = _header_list(header, "targets", str_only=False)
    locs = _header_list(header, "locs", str_only=True)
    provenance = header.get("provenance")
    if not isinstance(provenance, dict):
        raise MalformedTraceError("packed trace header field 'provenance' is not an object")

    columns: Dict[str, "array[int]"] = {}
    for attr, typecode in _COLUMN_LAYOUT:
        itemsize = array(typecode).itemsize
        need = count * itemsize
        chunk = data[offset:offset + need]
        if len(chunk) < need:
            raise _truncated(
                "column %r ends after %d of %d events" % (attr, len(chunk) // itemsize, count),
                event_index=len(chunk) // itemsize)
        columns[attr] = _column_from_bytes(typecode, chunk)
        offset += need
    if offset != len(data):
        raise MalformedTraceError(
            "packed trace has %d trailing bytes" % (len(data) - offset))

    kinds = columns["kinds"]
    tid_idx = columns["tid_idx"]
    target_idx = columns["target_idx"]
    loc_idx = columns["loc_idx"]
    local_time = columns["local_time"]
    tid_counts: Dict[int, int] = {}
    n_kinds = len(KIND_ORDER)
    for eid in range(count):
        if kinds[eid] >= n_kinds:
            raise MalformedTraceError(
                "unknown event kind code %d" % kinds[eid], event_index=eid)
        tid_i = tid_idx[eid]
        if tid_i >= len(tids):
            raise MalformedTraceError(
                "thread index %d out of range" % tid_i, event_index=eid)
        if not -1 <= target_idx[eid] < len(targets):
            raise MalformedTraceError(
                "target index %d out of range" % target_idx[eid], event_index=eid)
        if not -1 <= loc_idx[eid] < len(locs):
            raise MalformedTraceError(
                "location index %d out of range" % loc_idx[eid], event_index=eid)
        expected = tid_counts.get(tid_i, 0) + 1
        if local_time[eid] != expected:
            raise MalformedTraceError(
                "local time %d does not match thread position %d"
                % (local_time[eid], expected), event_index=eid)
        tid_counts[tid_i] = expected

    typed_tids: List[Tid] = list(tids)
    typed_targets: List[Target] = list(targets)
    typed_locs: List[str] = [loc for loc in locs if isinstance(loc, str)]
    return PackedTrace(
        kinds=kinds,
        tid_idx=tid_idx,
        target_idx=target_idx,
        loc_idx=loc_idx,
        local_time=local_time,
        tids=typed_tids,
        targets=typed_targets,
        locs=typed_locs,
        provenance={str(k): v for k, v in provenance.items()},
    )

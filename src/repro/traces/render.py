"""Paper-style rendering of traces and witnesses.

The paper draws executions as one column per thread with time flowing
downward (Figures 1–5). :func:`render_columns` reproduces that layout in
text, which makes witness traces dramatically easier to read than a
flat event list — the CLI's ``--witness`` output and the examples use
it. Racing events can be highlighted::

    Thread 1    Thread 2
    --------    --------
    wr(x)
    acq(m)
    wr(z)
    rel(m)
                acq(m)
                rd(y)
                rel(m)
                rd(x)      <== race
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Sequence, Set, Union

from repro.core.events import Event, Tid
from repro.core.trace import Trace


def _label(e: Event) -> str:
    if e.target is None:
        return f"{e.kind.value}"
    return f"{e.kind.value}({e.target})"


def render_columns(events: Union[Trace, Sequence[Event]],
                   highlight: Optional[Iterable[int]] = None,
                   min_width: int = 10) -> str:
    """Render events as per-thread columns in the paper's figure style.

    Args:
        events: A trace or any event sequence (e.g. a witness).
        highlight: Event ids to mark with ``<== race``.
        min_width: Minimum column width.
    """
    event_list: List[Event] = list(events)
    if not event_list:
        return "(empty trace)"
    marked: Set[int] = set(highlight or ())

    threads: List[Tid] = []
    for e in event_list:
        if e.tid not in threads:
            threads.append(e.tid)
    widths = {}
    for tid in threads:
        cells = [len(_label(e)) for e in event_list if e.tid == tid]
        widths[tid] = max([min_width, len(f"Thread {tid}")] + cells) + 2

    def row(cells: List[str]) -> str:
        return "".join(cell.ljust(widths[tid])
                       for tid, cell in zip(threads, cells)).rstrip()

    lines = [row([f"Thread {tid}" for tid in threads]),
             row(["-" * (widths[tid] - 2) for tid in threads])]
    for e in event_list:
        cells = ["" if tid != e.tid else _label(e) for tid in threads]
        line = row(cells)
        if e.eid in marked:
            line = line.ljust(sum(widths[t] for t in threads)) + "<== race"
        lines.append(line)
    return "\n".join(lines)


def render_witness(witness: Sequence[Event], first: Event,
                   second: Event) -> str:
    """Render a vindication witness with its racing pair highlighted."""
    return render_columns(witness, highlight=(first.eid, second.eid))

"""Seeded random generation of well-formed execution traces.

The generator drives the differential and property-based tests: random
traces are fed to both the online detectors and the reference engines
(and, when small enough, the brute-force oracle). It produces only
structurally valid traces — matched acquire/release with proper nesting,
forks before child events, joins after them.

The knobs deliberately favour the interesting corners of the space:
small numbers of variables and locks (so conflicts and critical-section
interactions are common) and optional lock nesting, volatiles, and
fork/join edges.
"""

from __future__ import annotations

import random
from dataclasses import asdict, dataclass
from typing import Dict, List, Optional, Set

from repro.core.trace import Trace, TraceBuilder


@dataclass
class GeneratorConfig:
    """Tuning knobs for :func:`random_trace`."""

    threads: int = 3
    events: int = 20
    variables: int = 3
    locks: int = 2
    volatiles: int = 0
    acquire_weight: float = 0.25
    release_weight: float = 0.35
    write_fraction: float = 0.5
    max_nesting: int = 2
    use_fork_join: bool = False
    close_critical_sections: bool = True


def random_trace(seed: int, config: Optional[GeneratorConfig] = None) -> Trace:
    """Generate a pseudo-random well-formed trace for ``seed``."""
    cfg = config or GeneratorConfig()
    rng = random.Random(seed)
    builder = TraceBuilder()
    tids = list(range(1, cfg.threads + 1))
    variables = [f"x{i}" for i in range(cfg.variables)]
    locks = [f"m{i}" for i in range(cfg.locks)]
    volatiles = [f"v{i}" for i in range(cfg.volatiles)]

    held_by: Dict[str, int] = {}                         # lock -> tid
    stacks: Dict[int, List[str]] = {t: [] for t in tids}  # tid -> lock stack
    started = set(tids)
    finished: Set[int] = set()

    if cfg.use_fork_join and len(tids) > 1:
        # The first thread forks the rest and joins them at the end.
        started = {tids[0]}
        for child in tids[1:]:
            builder.fork(tids[0], child)
            started.add(child)

    for _ in range(cfg.events):
        tid = rng.choice([t for t in tids if t in started and t not in finished])
        stack = stacks[tid]
        roll = rng.random()
        free_locks = [m for m in locks if m not in held_by]
        if (roll < cfg.acquire_weight and free_locks
                and len(stack) < cfg.max_nesting):
            lock = rng.choice(free_locks)
            builder.acq(tid, lock)
            held_by[lock] = tid
            stack.append(lock)
        elif roll < cfg.acquire_weight + cfg.release_weight and stack:
            lock = stack.pop()
            builder.rel(tid, lock)
            del held_by[lock]
        elif volatiles and rng.random() < 0.2:
            var = rng.choice(volatiles)
            if rng.random() < 0.5:
                builder.vwr(tid, var)
            else:
                builder.vrd(tid, var)
        else:
            var = rng.choice(variables)
            if rng.random() < cfg.write_fraction:
                builder.wr(tid, var)
            else:
                builder.rd(tid, var)

    if cfg.close_critical_sections:
        for tid in tids:
            while stacks[tid]:
                lock = stacks[tid].pop()
                builder.rel(tid, lock)
                del held_by[lock]

    if cfg.use_fork_join and len(tids) > 1:
        for child in tids[1:]:
            builder.join(tids[0], child)

    trace = builder.build()
    # Stamp how to regenerate this exact trace, so any report or
    # measurement derived from it is reproducible from its own output.
    trace.provenance = {
        "kind": "generator",
        "seed": seed,
        "config": asdict(cfg),
    }
    return trace


def random_traces(count: int, base_seed: int = 0,
                  config: Optional[GeneratorConfig] = None) -> List[Trace]:
    """Generate ``count`` traces with consecutive seeds."""
    return [random_trace(base_seed + i, config) for i in range(count)]

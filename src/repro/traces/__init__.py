"""Trace sources: paper litmus executions, random generation, IO, shrinking."""

from repro.traces.gen import GeneratorConfig, random_trace, random_traces
from repro.traces.io import (
    dump_trace,
    dumps_trace,
    load_events,
    load_trace,
    loads_trace,
)
from repro.traces.minimize import minimize_trace
from repro.traces.render import render_columns, render_witness
from repro.traces import litmus

__all__ = [
    "GeneratorConfig",
    "dump_trace",
    "dumps_trace",
    "litmus",
    "load_events",
    "load_trace",
    "loads_trace",
    "minimize_trace",
    "random_trace",
    "random_traces",
    "render_columns",
    "render_witness",
]

"""Offline analysis: vindicate a trace captured by another tool.

Predictive race detection does not need to run inside the program under
test: any tool that can log memory accesses and synchronisation
operations can hand the log to this library. This example writes a
trace in the plain-text interchange format, re-loads it, and runs the
pipeline — the same flow as ``vindicator analyze <file>`` on the
command line.

Run with::

    python examples/offline_analysis.py
"""

import tempfile
from pathlib import Path

from repro import Vindicator
from repro.traces.io import dump_trace, load_trace
from repro.traces.litmus import figure1

TRACE_TEXT = """\
# A trace as another tool might have logged it: one event per line,
# '<thread> <op> <target> [source-location]'.
req-1 wr   sessionMap   SessionStore.put():88
req-1 acq  storeLock
req-1 wr   storeStats   SessionStore.put():91
req-1 rel  storeLock
req-2 acq  storeLock
req-2 rd   storeEpoch   SessionStore.sweep():130
req-2 rel  storeLock
req-2 rd   sessionMap   SessionStore.sweep():134
"""


def main() -> None:
    workdir = Path(tempfile.mkdtemp(prefix="repro-offline-"))

    # 1. A trace arriving as text (e.g. from an instrumentation agent).
    incoming = workdir / "captured.trace"
    incoming.write_text(TRACE_TEXT, encoding="utf-8")
    trace = load_trace(incoming)
    print(f"loaded {incoming.name}: {len(trace)} events, "
          f"threads {trace.threads}")

    report = Vindicator(vindicate_all=True).run(trace)
    print(report.summary())
    print()

    # 2. Round-tripping traces the library produced (litmus, workloads,
    #    scheduler output) works the same way.
    exported = workdir / "figure1.trace"
    dump_trace(figure1(), exported)
    reloaded = load_trace(exported)
    report2 = Vindicator(vindicate_all=True).run(reloaded)
    print(f"re-analyzed {exported.name}: "
          f"{report2.wcp.dynamic_count} WCP-race(s), "
          f"verdicts {[str(v.verdict) for v in report2.vindications]}")


if __name__ == "__main__":
    main()

"""Quickstart: predict a data race that happens-before detection misses.

Builds the paper's Figure 2 execution by hand, runs the full Vindicator
pipeline (HB + WCP + DC analyses, then VINDICATERACE on the DC-only
race), and prints the correctly reordered witness trace that proves the
race can really happen.

Run with::

    python examples/quickstart.py
"""

from repro import TraceBuilder, Vindicator
from repro.traces.render import render_witness

# The observed execution: thread 1 writes x before publishing y under
# lock o; thread 2 consumes y and then passes through lock m; thread 3
# passes through m and reads x. No two conflicting accesses are adjacent
# here — but they could be, in a different (legal) schedule.
trace = (TraceBuilder()
         .wr(1, "x", loc="Init.setup():12")
         .acq(1, "o")
         .wr(1, "y", loc="Init.publish():15")
         .rel(1, "o")
         .acq(2, "o")
         .rd(2, "y", loc="Worker.consume():31")
         .rel(2, "o")
         .acq(2, "m")
         .rel(2, "m")
         .acq(3, "m")
         .rel(3, "m")
         .rd(3, "x", loc="Reporter.dump():44")
         .build())


def main() -> None:
    report = Vindicator().run(trace)

    print("Per-analysis results (same trace):")
    for analysis in (report.hb, report.wcp, report.dc):
        print(f"  {analysis}")
    print()
    print("HB and WCP see nothing; DC predicts a race and VindicateRace")
    print("proves it by constructing a correctly reordered execution:")
    print()
    for vindication in report.vindications:
        print(f"  {vindication.race}")
        print(f"  verdict: {vindication.verdict}")
        print("  witness (a legal schedule with the racing accesses "
              "back to back):")
        assert vindication.witness is not None
        for line in render_witness(vindication.witness,
                                   vindication.race.first,
                                   vindication.race.second).splitlines():
            print(f"    {line}")


if __name__ == "__main__":
    main()

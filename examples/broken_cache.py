"""Scenario: a service with a broken lazily initialised cache.

This example uses the execution substrate (the library's RoadRunner
analog) to model a realistic bug: a cache entry that *escapes* before
its lock-protected registration, H2-StringCache style. Whether any
detector can see the bug depends on the relation it tracks:

* the observed schedule orders the write and the late read through an
  unrelated lock hand-off, so **HB misses it** in most runs;
* WCP composes with that happens-before ordering, so **WCP misses it
  too**;
* **DC predicts it**, and VindicateRace proves it real with a witness.

Run with::

    python examples/broken_cache.py [seed]
"""

import sys

from repro import RaceClass, Vindicator
from repro.runtime import Program, execute, fast_path_filter, ops


def cache_writer():
    """Builds an entry, then registers it under the cache lock — but the
    entry object escaped one line earlier (the bug)."""
    yield ops.wr("cache.entry", loc="Cache.getNew():93")       # escapes!
    yield ops.acq("cacheLock")
    yield ops.wr("cache.slot", loc="Cache.getNew():95")        # registers
    yield ops.rel("cacheLock")


def compactor():
    """Periodically consumes the registration, then touches the
    compaction lock — an unrelated hand-off that happens to order
    everything downstream in this schedule."""
    yield ops.acq("cacheLock")
    yield ops.rd("cache.slot", loc="Cache.compact():210")
    yield ops.rel("cacheLock")
    yield ops.acq("compactLock")
    yield ops.rel("compactLock")


def late_reader():
    """A request thread that arrives much later, passes through the
    compaction lock, and reads the (escaped) entry."""
    for i in range(15):
        yield ops.wr(f"request.scratch{i % 3}", loc="Request.parse():20")
    yield ops.acq("compactLock")
    yield ops.rel("compactLock")
    yield ops.rd("cache.entry", loc="Cache.get():48")          # races!


def main_thread():
    yield ops.fork("writer", cache_writer)
    yield ops.fork("compactor", compactor)
    yield ops.fork("reader", late_reader)
    yield ops.join("writer")
    yield ops.join("compactor")
    yield ops.join("reader")


def main() -> None:
    seed = int(sys.argv[1]) if len(sys.argv) > 1 else 5
    program = Program(name="cache-service", main=main_thread)
    trace = execute(program, seed=seed)
    filtered, stats = fast_path_filter(trace)
    print(f"executed {len(trace)} events "
          f"(fast path removed {stats.removed}); analysing...")

    report = Vindicator().run(filtered)
    print()
    for analysis in (report.hb, report.wcp, report.dc):
        print(f"  {analysis}")

    dc_only = report.dc_only_races
    if not dc_only:
        print("\nThis schedule did not produce a DC-only race "
              "(try another seed); any HB/WCP races above are still real.")
        return
    print(f"\n{len(dc_only)} DC-only race(s) — invisible to HB and WCP:")
    for vindication in report.vindications:
        race = vindication.race
        print(f"  {race.first.loc}  <->  {race.second.loc}")
        print(f"  event distance {race.event_distance}, "
              f"verdict: {vindication.verdict}")
        assert race.race_class is RaceClass.DC_ONLY
    print("\nThe witness shows the buggy interleaving: the reader sees the")
    print("cache entry while the writer is still publishing it.")


if __name__ == "__main__":
    main()

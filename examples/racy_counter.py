"""Scenario: the classic unguarded counter, as *real* ``threading`` code.

Three worker threads bump two module globals: ``counter`` with no lock
(the bug) and ``hits`` under ``COUNT_LOCK`` (correct).  This file is the
first of the *paired* examples: the same program twice, once as real
Python that ``vindicator scan`` analyses statically, and once as a
generator model (:func:`model`) the dynamic pipeline executes — the
coverage suite asserts the static candidates cover every race the
detectors find on the model's traces, and that statically pruned paths
never race dynamically.

Run with::

    python examples/racy_counter.py
"""

import threading

from repro.runtime import Program, ops

#: Shared state: ``counter`` is updated with no synchronisation at all,
#: ``hits`` only ever under COUNT_LOCK.
counter = 0
hits = 0
COUNT_LOCK = threading.Lock()
WORKERS = 3


def work(n):
    global counter, hits
    for _ in range(n):
        counter += 1          # racy read-modify-write
        with COUNT_LOCK:
            hits += 1         # guarded


def main():
    threads = [threading.Thread(target=work, args=(1000,))
               for _ in range(WORKERS)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    # Joined above: these reads are ordered after every worker.
    print(f"counter={counter} (lost updates likely) hits={hits}")


def model():
    """The generator-model analog, with identical shared-variable names
    so static (source) and dynamic (trace) results are comparable."""

    def worker():
        for _ in range(3):
            yield ops.rd("counter", loc="racy_counter.work():31")
            yield ops.wr("counter", loc="racy_counter.work():31")
            yield ops.acq("COUNT_LOCK")
            yield ops.rd("hits", loc="racy_counter.work():33")
            yield ops.wr("hits", loc="racy_counter.work():33")
            yield ops.rel("COUNT_LOCK")

    def main_thread():
        for i in range(3):
            yield ops.fork(f"w{i}", worker)
        for i in range(3):
            yield ops.join(f"w{i}")

    return Program(name="racy-counter", main=main_thread)


if __name__ == "__main__":
    main()

"""Scenario: a registry with an inconsistent lock discipline.

``Registry.put`` protects the instance state with the per-instance
``self.lock``; ``Registry.snapshot`` reads ``self.stats`` under the
*module* lock ``AUDIT_LOCK`` instead — a classic inconsistent-lockset
bug (SA203): both sides are locked, but never by the same lock.  The
producers run on a ``ThreadPoolExecutor``, the auditor is a
``threading.Thread`` subclass, so the scanner's three spawn idioms are
all exercised.  ``Registry.entries`` and ``audit_total`` are guarded
consistently and must *not* be reported.

Like ``examples/racy_counter.py``, this is a *paired* example:
:func:`model` is the generator analog with identical shared-variable
names, executed by the dynamic coverage suite.

Run with::

    python examples/locked_registry.py
"""

import threading
from concurrent.futures import ThreadPoolExecutor

from repro.runtime import Program, ops

AUDIT_LOCK = threading.Lock()
audit_total = 0


class Registry:
    def __init__(self):
        self.lock = threading.Lock()
        self.entries = {}
        self.stats = 0

    def put(self, key, value):
        with self.lock:
            self.entries[key] = value
            self.stats += 1           # guarded by Registry.lock

    def snapshot(self):
        with AUDIT_LOCK:              # BUG: wrong lock for self.stats
            return self.stats


REGISTRY = Registry()


def producer(reg):
    for i in range(8):
        reg.put(i, i * i)


class Auditor(threading.Thread):
    def run(self):
        global audit_total
        value = REGISTRY.snapshot()
        with AUDIT_LOCK:
            audit_total += value


def main():
    with ThreadPoolExecutor(max_workers=2) as pool:
        for _ in range(2):
            pool.submit(producer, REGISTRY)
        auditor = Auditor()
        auditor.start()
    auditor.join()
    with AUDIT_LOCK:
        print(f"entries={len(REGISTRY.entries)} audit={audit_total}")


def model():
    """Generator-model analog (same shared-variable names)."""

    def producer_model():
        for i in range(4):
            yield ops.acq("Registry.lock")
            yield ops.wr(f"Registry.entries[{i}]",
                         loc="locked_registry.put():40")
            yield ops.rd("Registry.stats", loc="locked_registry.put():41")
            yield ops.wr("Registry.stats", loc="locked_registry.put():41")
            yield ops.rel("Registry.lock")

    def auditor_model():
        yield ops.acq("AUDIT_LOCK")
        yield ops.rd("Registry.stats", loc="locked_registry.snapshot():45")
        yield ops.rel("AUDIT_LOCK")
        yield ops.acq("AUDIT_LOCK")
        yield ops.rd("audit_total", loc="locked_registry.run():59")
        yield ops.wr("audit_total", loc="locked_registry.run():59")
        yield ops.rel("AUDIT_LOCK")

    def main_thread():
        yield ops.fork("p0", producer_model)
        yield ops.fork("p1", producer_model)
        yield ops.fork("auditor", auditor_model)
        yield ops.join("p0")
        yield ops.join("p1")
        yield ops.join("auditor")

    return Program(name="locked-registry", main=main_thread)


if __name__ == "__main__":
    main()

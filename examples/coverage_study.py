"""Coverage study: how much more does each relation see?

Reproduces the paper's core comparison on one of the DaCapo-analog
workloads: run HB, WCP, and DC analysis over the same executions, count
statically distinct races per relation, classify every dynamic race, and
plot the event-distance survival curves (the Figure 6 view) as ASCII.

Run with::

    python examples/coverage_study.py [workload] [trials]
"""

import sys

from repro import RaceClass, Vindicator
from repro.runtime import execute, fast_path_filter
from repro.runtime.workloads import WORKLOADS
from repro.stats.cdf import ascii_cdf_plot, median
from repro.stats.distances import distances_by_class, static_distance_ranges


def main() -> None:
    workload = sys.argv[1] if len(sys.argv) > 1 else "xalan"
    trials = int(sys.argv[2]) if len(sys.argv) > 2 else 5
    factory = WORKLOADS[workload]

    all_races = []
    static_counts = {"HB": [], "WCP": [], "DC": []}
    for seed in range(trials):
        trace = execute(factory(scale=0.8), seed=seed)
        filtered, _ = fast_path_filter(trace)
        report = Vindicator().run(filtered)
        static_counts["HB"].append(report.hb.static_count)
        static_counts["WCP"].append(report.wcp.static_count)
        static_counts["DC"].append(report.dc.static_count)
        all_races.extend(report.dc.races)

    print(f"{workload}: statically distinct races over {trials} trials "
          f"(avg)")
    for relation, counts in static_counts.items():
        print(f"  {relation:4s}: {sum(counts) / len(counts):6.1f}")
    print()

    by_class = distances_by_class(all_races)
    print("dynamic races by class:")
    for race_class in RaceClass:
        values = by_class.get(race_class, [])
        if values:
            print(f"  {str(race_class):9s}: {len(values):4d} "
                  f"(median event distance {median(values):8.1f})")
    print()

    series = {str(k): v for k, v in by_class.items()}
    print(ascii_cdf_plot(series))
    print()

    dc_only = [r for r in all_races if r.race_class is RaceClass.DC_ONLY]
    if dc_only:
        print("DC-only static races (the ones only Vindicator can prove):")
        for key, rng in static_distance_ranges(dc_only).items():
            print(f"  {' <-> '.join(sorted(key))}")
            print(f"      event distance {rng}")


if __name__ == "__main__":
    main()
